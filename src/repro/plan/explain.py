"""Pretty-print logical plans and lowered physical operator trees.

``explain(plan, schemas)`` renders the IR tree with each node's derived
output schema; it works on source plans *and* on placed distributed
plans (Exchange nodes show their routing).  ``explain_physical``
renders a lowered operator tree, and ``explain_fragments`` renders a
distributed lowering with per-fragment/server annotations — the same
IR shown three ways is ``examples/explain_plan.py``.
"""

from __future__ import annotations

from typing import Any, Optional

from .ir import (
    Aggregate,
    Exchange,
    Filter,
    Join,
    PlanNode,
    Project,
    Scan,
    TopN,
    output_schema,
)

__all__ = ["explain", "explain_physical", "explain_fragments"]


def _condition(cond: tuple) -> str:
    column, op, value = cond
    return f"{column} {op} {value!r}"


def _label(node: PlanNode) -> str:
    if isinstance(node, Scan):
        label = f"Scan[{node.table}]"
        if node.conditions:
            label += " filter " + " and ".join(_condition(c) for c in node.conditions)
        return label
    if isinstance(node, Filter):
        return f"Filter[{_condition(node.condition)}]"
    if isinstance(node, Project):
        return f"Project[{', '.join(node.columns)}]"
    if isinstance(node, Join):
        label = f"Join[{node.left_key} = {node.right_key}]"
        if node.semijoin:
            label += " semijoin"
        return label
    if isinstance(node, Aggregate):
        aggs = ", ".join(a.out_name for a in node.aggs) or "-"
        label = f"Aggregate[by {', '.join(node.group_by)}; {aggs}]"
        if node.phase != "single":
            label += f" phase={node.phase}"
        return label
    if isinstance(node, TopN):
        return f"TopN[{node.n}]"
    if isinstance(node, Exchange):
        if node.kind == "shuffle":
            how = f"shuffle by {node.key}"
            if node.spec is not None and getattr(node.spec, "table", "*") != "*":
                how += f" (owner: {node.spec.table} partitioning)"
            return f"Exchange[{how}]"
        return "Exchange[gather -> root]"
    return type(node).__name__


def explain(
    plan: PlanNode,
    schemas: Optional[dict] = None,
    show_schema: bool = True,
) -> str:
    """Render a logical plan tree, one node per line, schemas inline."""
    lines: list[str] = []

    def render(node: PlanNode, depth: int) -> None:
        line = "  " * depth + _label(node)
        if show_schema and schemas is not None:
            line += f"  :: ({output_schema(node, schemas).describe()})"
        lines.append(line)
        for child in node.children():
            render(child, depth + 1)

    render(plan, 0)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Physical trees
# ---------------------------------------------------------------------------

#: Attribute names under which physical operators hold child operators,
#: in render order (build before probe, outer before inner).
_CHILD_ATTRS = ("child", "build", "probe", "outer", "scan")


def _physical_label(op: Any) -> str:
    name = type(op).__name__
    notes = []
    for attr in ("exchange_id", "top_n", "root"):
        value = getattr(op, attr, None)
        if value is not None and not hasattr(value, "run"):
            notes.append(f"{attr}={value}")
    if getattr(op, "table", None) is not None and hasattr(op.table, "name"):
        notes.insert(0, op.table.name)
    if getattr(op, "predicate", None) is not None:
        notes.append("filtered")
    if getattr(op, "filter_slot", None) is not None:
        notes.append("bloom-filtered")
    if getattr(op, "inner_tree", None) is not None:
        notes.append("index=clustered")
    return f"{name}({', '.join(notes)})" if notes else name


def explain_physical(op: Any, depth: int = 0) -> str:
    """Render a lowered physical operator tree."""
    lines = ["  " * depth + _physical_label(op)]
    for attr in _CHILD_ATTRS:
        child = getattr(op, attr, None)
        if child is not None and hasattr(child, "run") and not isinstance(child, type):
            lines.append(explain_physical(child, depth + 1))
    return "\n".join(lines)


def explain_fragments(plans: list, servers: Optional[list] = None) -> str:
    """Render per-fragment physical plans with server annotations."""
    lines: list[str] = []
    for index, plan in enumerate(plans):
        where = ""
        if servers is not None and index < len(servers):
            where = f" @ {getattr(servers[index], 'name', servers[index])}"
        lines.append(f"fragment {index}{where}:")
        lines.append(explain_physical(plan, depth=1))
    return "\n".join(lines)
