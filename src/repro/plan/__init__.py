"""repro.plan: the logical plan IR both compilation paths lower.

Declarative Scan/Filter/Project/Join/Aggregate/TopN trees with schemas
derived bottom-up (:mod:`~repro.plan.ir`), the single-node lowering
onto the engine's physical operators (:mod:`~repro.plan.lower`), and
the ``explain`` pretty-printers (:mod:`~repro.plan.explain`).  The
distributed lowering — Exchange placement over the same IR — lives in
:mod:`repro.dist.planner`.
"""

from .explain import explain, explain_fragments, explain_physical
from .ir import (
    Agg,
    Aggregate,
    Exchange,
    FieldRef,
    Filter,
    Join,
    PlanError,
    PlanNode,
    PlanSchema,
    Project,
    Scan,
    TopN,
    count_nodes,
    output_schema,
    to_engine_schema,
    walk,
)
from .lower import (
    Lowering,
    compile_aggregate,
    compile_predicate,
    compile_projector,
    estimate_rows,
    lower_single,
)

__all__ = [
    "Agg",
    "Aggregate",
    "Exchange",
    "FieldRef",
    "Filter",
    "Join",
    "Lowering",
    "PlanError",
    "PlanNode",
    "PlanSchema",
    "Project",
    "Scan",
    "TopN",
    "compile_aggregate",
    "compile_predicate",
    "compile_projector",
    "count_nodes",
    "estimate_rows",
    "explain",
    "explain_fragments",
    "explain_physical",
    "lower_single",
    "output_schema",
    "to_engine_schema",
    "walk",
]
