"""Lower the logical IR onto the single-node physical operators.

One :class:`Lowering` walk turns a plan tree into the engine's
generator operators, fusing where a real optimizer would:

* Filter chains over a Scan fuse into the TableScan's predicate;
* a Project directly over a Join fuses into the join's ``combine``
  (the physical join emits projected tuples, never the wide row);
* a Project directly over a Scan fuses into the scan's ``project``.

Un-fusable Filters/Projects lower to the row-at-a-time
:class:`~repro.engine.operators.FilterRows` /
:class:`~repro.engine.operators.ProjectRows` operators.

Join strategy consults the §3.3 cost model when one is supplied
(:func:`repro.engine.optimizer.choose_join`): a Join whose right side
is a bare Scan of a table clustered on the join key may lower to an
IndexNestedLoopJoin when the estimated outer cardinality is below the
medium's crossover.  Without a cost model every join is a hash join —
which is also what distributed fragments use, so all lowerings stay
row-comparable.

The distributed planner (:mod:`repro.dist.planner`) subclasses
:class:`Lowering` to add Exchange handling; everything else — scans,
joins, aggregation phases, sorts — is shared, which is the point of the
unified IR: one set of lowering rules, exercised by both paths.
"""

from __future__ import annotations

import operator as _op
from typing import Callable, Optional

from ..engine.catalog import Schema
from ..engine.operators import (
    ExternalSort,
    FilterRows,
    HashAggregate,
    HashJoin,
    IndexNestedLoopJoin,
    Operator,
    ProjectRows,
    TableScan,
)
from ..engine.optimizer import CostModel, JoinChoice, choose_join
from .ir import (
    Agg,
    Aggregate,
    Exchange,
    Filter,
    Join,
    PlanError,
    PlanNode,
    PlanSchema,
    Project,
    Scan,
    TopN,
    output_schema,
)

__all__ = [
    "Lowering",
    "lower_single",
    "compile_predicate",
    "compile_projector",
    "compile_aggregate",
    "estimate_rows",
]

_OPS = {
    "<": _op.lt,
    "<=": _op.le,
    ">": _op.gt,
    ">=": _op.ge,
    "==": _op.eq,
}

#: Assumed fraction of rows surviving one filter condition, for the
#: coarse cardinality estimate the join-choice cost model consumes.
FILTER_SELECTIVITY = 0.3


def compile_predicate(schema: PlanSchema, conditions) -> Optional[Callable]:
    """AND of ``(column, op, value)`` conditions over ``schema`` rows."""
    if not conditions:
        return None
    compiled = []
    for column, op, value in conditions:
        if op not in _OPS:
            raise PlanError(f"unknown comparison op {op!r}")
        compiled.append((schema.index_of(column), _OPS[op], value))
    if len(compiled) == 1:
        index, compare, value = compiled[0]
        return lambda row: compare(row[index], value)
    return lambda row: all(compare(row[i], value) for i, compare, value in compiled)


def compile_projector(schema: PlanSchema, columns) -> Callable[[tuple], tuple]:
    """Row function keeping ``columns`` (resolved against ``schema``)."""
    slots = tuple(schema.index_of(ref) for ref in columns)
    return lambda row: tuple(row[i] for i in slots)


def _join_projector(
    left: PlanSchema, right: PlanSchema, columns
) -> Callable[[tuple, tuple], tuple]:
    """Combine function for a join with a fused projection.

    Each projected ref resolves against the concatenated schema
    (left-first, same as schema derivation), then maps to a
    (side, index) slot — exactly the legacy planner's projector.
    """
    concat = left.concat(right)
    n_left = len(left)
    slots = []
    for ref in columns:
        position = concat.index_of(ref)
        slots.append((0, position) if position < n_left else (1, position - n_left))
    slots = tuple(slots)

    def combine(build_row, probe_row):
        sides = (build_row, probe_row)
        return tuple(sides[which][index] for which, index in slots)

    return combine


def estimate_rows(node: PlanNode, tables: dict, schemas: dict[str, Schema]) -> float:
    """Coarse cardinality estimate (for join-choice only, never results)."""
    if isinstance(node, Scan):
        count = tables[node.table].stats.row_count
        return max(1.0, count * FILTER_SELECTIVITY ** len(node.conditions))
    if isinstance(node, Filter):
        return max(1.0, estimate_rows(node.child, tables, schemas) * FILTER_SELECTIVITY)
    if isinstance(node, (Project, Exchange)):
        return estimate_rows(node.child, tables, schemas)
    if isinstance(node, Join):
        # Equi-join on a key: bounded by the probe side's cardinality.
        return estimate_rows(node.right, tables, schemas)
    if isinstance(node, Aggregate):
        return max(1.0, estimate_rows(node.child, tables, schemas) * 0.1)
    if isinstance(node, TopN):
        return float(node.n)
    return 1.0


# ---------------------------------------------------------------------------
# Aggregate compilation (shared by single-phase and two-phase lowering)
# ---------------------------------------------------------------------------


def _acc_init(agg: Agg):
    if agg.fn == "count":
        return 0
    if agg.fn == "avg":
        return (0, 0)
    if agg.fn == "sum":
        return 0
    return None  # min / max


def _acc_update(agg: Agg, extract: Optional[Callable]):
    if agg.fn == "count":
        return lambda acc, row: acc + 1
    if agg.fn == "sum":
        return lambda acc, row: acc + extract(row)
    if agg.fn == "min":
        return lambda acc, row: extract(row) if acc is None else min(acc, extract(row))
    if agg.fn == "max":
        return lambda acc, row: extract(row) if acc is None else max(acc, extract(row))
    # avg: exact integer partials merge exactly at the final phase.
    return lambda acc, row: (acc[0] + extract(row), acc[1] + 1)


def _acc_merge(agg: Agg):
    """Merge one partial component tuple into an accumulator (final phase)."""
    if agg.fn in ("count", "sum"):
        return lambda acc, comps: acc + comps[0]
    if agg.fn == "min":
        return lambda acc, comps: comps[0] if acc is None else min(acc, comps[0])
    if agg.fn == "max":
        return lambda acc, comps: comps[0] if acc is None else max(acc, comps[0])
    return lambda acc, comps: (acc[0] + comps[0], acc[1] + comps[1])


def _acc_final(agg: Agg):
    if agg.fn == "avg":
        return lambda acc: acc[0] / acc[1]
    return lambda acc: acc


def _partial_width(agg: Agg) -> int:
    return 2 if agg.fn == "avg" else 1


def _flatten(agg: Agg, acc) -> tuple:
    return tuple(acc) if agg.fn == "avg" else (acc,)


def compile_aggregate(node: Aggregate, child_schema: PlanSchema) -> dict:
    """Compile an Aggregate node into HashAggregate closures.

    Returns ``group_key``, ``init``, ``update`` and ``finalize``
    appropriate for the node's phase:

    * ``single`` — accumulate raw rows, finalize to result rows;
    * ``partial`` — accumulate raw rows, finalize to *partial* rows
      (group cols + flattened accumulator components);
    * ``final`` — child rows are partial rows: group on the leading
      group columns, merge components, finalize to result rows.
    """
    aggs = node.aggs
    if node.phase == "final":
        n_group = len(node.group_by)
        offsets = []
        at = n_group
        for agg in aggs:
            width = _partial_width(agg)
            offsets.append((at, at + width))
            at += width
        merges = tuple(_acc_merge(agg) for agg in aggs)
        finals = tuple(_acc_final(agg) for agg in aggs)

        def group_key(row):
            return row[:n_group]

        def init():
            return tuple(_acc_init(agg) for agg in aggs)

        def update(acc, row):
            return tuple(
                merge(a, row[lo:hi])
                for merge, a, (lo, hi) in zip(merges, acc, offsets)
            )

        def finalize(key, acc):
            return key + tuple(final(a) for final, a in zip(finals, acc))

        return {"group_key": group_key, "init": init,
                "update": update, "finalize": finalize}

    group_slots = tuple(child_schema.index_of(ref) for ref in node.group_by)
    extracts = tuple(
        child_schema.extractor(agg.column) if agg.column is not None else None
        for agg in aggs
    )
    updates = tuple(_acc_update(agg, ex) for agg, ex in zip(aggs, extracts))
    finals = tuple(_acc_final(agg) for agg in aggs)

    def group_key(row):
        return tuple(row[i] for i in group_slots)

    def init():
        return tuple(_acc_init(agg) for agg in aggs)

    def update(acc, row):
        return tuple(up(a, row) for up, a in zip(updates, acc))

    if node.phase == "partial":
        def finalize(key, acc):
            out = key
            for agg, a in zip(aggs, acc):
                out = out + _flatten(agg, a)
            return out
    else:
        def finalize(key, acc):
            return key + tuple(final(a) for final, a in zip(finals, acc))

    return {"group_key": group_key, "init": init,
            "update": update, "finalize": finalize}


# ---------------------------------------------------------------------------
# The lowering walk
# ---------------------------------------------------------------------------


class Lowering:
    """IR → single-node physical operators, with fusion.

    ``tables`` maps table names to loaded :class:`~repro.engine.Table`s
    (one shard's dict in distributed fragments); ``schemas`` maps table
    names to base :class:`~repro.engine.Schema`s.  Subclasses override
    :meth:`lower_exchange` (and hook :meth:`lower_join`) to place
    physical exchange operators — see :mod:`repro.dist.planner`.
    """

    def __init__(
        self,
        tables: dict,
        schemas: dict[str, Schema],
        cost_model: Optional[CostModel] = None,
    ):
        self.tables = tables
        self.schemas = schemas
        self.cost_model = cost_model

    # -- public ------------------------------------------------------------

    def lower(self, node: PlanNode) -> Operator:
        if isinstance(node, TopN):
            return ExternalSort(self.lower(node.child), key=lambda row: row, top_n=node.n)
        if isinstance(node, Project):
            return self.lower_project(node)
        if isinstance(node, Join):
            return self.lower_join(node)
        if isinstance(node, Aggregate):
            return self.lower_aggregate(node)
        if isinstance(node, (Scan, Filter)):
            return self.lower_scan_chain(node)
        if isinstance(node, Exchange):
            return self.lower_exchange(node)
        raise PlanError(f"cannot lower node {type(node).__name__}")

    def schema_of(self, node: PlanNode) -> PlanSchema:
        return output_schema(node, self.schemas)

    # -- per-node rules ----------------------------------------------------

    def lower_scan_chain(self, node: PlanNode, project=None) -> Operator:
        """Scan, or Filter* over a Scan: fuse conditions into the scan."""
        conditions: list = []
        at = node
        while isinstance(at, Filter):
            conditions.append(at.condition)
            at = at.child
        if isinstance(at, Scan):
            conditions.extend(at.conditions)
            schema = self.schema_of(at)
            table = self.tables[at.table]
            return TableScan(
                table,
                predicate=compile_predicate(schema, tuple(conditions)),
                project=project,
            )
        # Filters over a non-scan child: row-at-a-time filter operator.
        child = self.lower(at)
        schema = self.schema_of(at)
        filtered = FilterRows(child, compile_predicate(schema, tuple(conditions)))
        if project is not None:
            return ProjectRows(filtered, project, row_bytes=filtered.row_bytes)
        return filtered

    def lower_project(self, node: Project) -> Operator:
        child = node.child
        if isinstance(child, Join):
            return self.lower_join(child, project_columns=node.columns)
        child_schema = self.schema_of(child)
        projector = compile_projector(child_schema, node.columns)
        if isinstance(child, (Scan, Filter)):
            return self.lower_scan_chain(child, project=projector)
        lowered = self.lower(child)
        out_schema = self.schema_of(node)
        return ProjectRows(lowered, projector, row_bytes=out_schema.row_bytes)

    def lower_join(self, node: Join, project_columns=None) -> Operator:
        left_schema = self.schema_of(node.left)
        right_schema = self.schema_of(node.right)
        build_key = left_schema.extractor(node.left_key)
        probe_key = right_schema.extractor(node.right_key)
        if project_columns is not None:
            combine = _join_projector(left_schema, right_schema, project_columns)
        else:
            combine = lambda b, p: b + p  # noqa: E731
        inlj = self._inlj_choice(node, left_schema)
        if inlj is not None:
            outer = self.lower(node.left)
            return IndexNestedLoopJoin(
                outer=outer, inner_tree=inlj,
                outer_key=build_key, combine=combine,
            )
        build_op = self.lower(node.left)
        probe_op = self.lower(node.right)
        build_op, probe_op = self.decorate_join_inputs(
            node, build_op, probe_op, left_schema, right_schema
        )
        return HashJoin(
            build=build_op,
            probe=probe_op,
            build_key=build_key,
            probe_key=probe_key,
            combine=combine,
        )

    def decorate_join_inputs(
        self,
        node: Join,
        build_op: Operator,
        probe_op: Operator,
        left_schema: PlanSchema,
        right_schema: PlanSchema,
    ) -> tuple[Operator, Operator]:
        """Hook for subclasses (semi-join pushdown wraps the build side)."""
        return build_op, probe_op

    def _inlj_choice(self, node: Join, left_schema: PlanSchema):
        """Inner clustered B-tree iff the cost model prefers an INLJ."""
        if self.cost_model is None or not isinstance(node.right, Scan):
            return None
        if node.right.conditions:
            return None
        table = self.tables.get(node.right.table)
        if table is None or table.clustered is None:
            return None
        if table.schema.key != node.right_key.rsplit(".", 1)[-1]:
            return None
        outer_rows = max(1, int(estimate_rows(node.left, self.tables, self.schemas)))
        choice, _inlj_cost, _hash_cost = choose_join(self.cost_model, outer_rows, table)
        if choice is JoinChoice.INDEX_NESTED_LOOP:
            return table.clustered
        return None

    def lower_aggregate(self, node: Aggregate) -> Operator:
        child_schema = self.schema_of(node.child)
        compiled = compile_aggregate(node, child_schema)
        return HashAggregate(self.lower(node.child), **compiled)

    def lower_exchange(self, node: Exchange) -> Operator:
        raise PlanError(
            "single-node lowering found an Exchange node — lower the "
            "source plan, not a placed distributed plan"
        )


def lower_single(
    plan: PlanNode,
    tables: dict,
    schemas: dict[str, Schema],
    cost_model: Optional[CostModel] = None,
) -> Operator:
    """Lower a logical plan to the single-node physical operator tree."""
    return Lowering(tables, schemas, cost_model).lower(plan)
