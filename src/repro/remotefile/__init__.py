"""Remote memory exposed through a lightweight file API (Table 2)."""

from .api import (
    AccessPolicy,
    RemoteFile,
    RemoteFileError,
    RemoteMemoryFilesystem,
    RemoteMemoryUnavailable,
    TornWrite,
)
from .staging import MEMCPY_BYTES_PER_US, StagingPool

__all__ = [
    "AccessPolicy",
    "MEMCPY_BYTES_PER_US",
    "RemoteFile",
    "RemoteFileError",
    "RemoteMemoryFilesystem",
    "RemoteMemoryUnavailable",
    "StagingPool",
    "TornWrite",
]
