"""Pre-registered staging buffers on the database server.

Section 4.2: the buffer pool is not contiguous and dynamically grows, so
registering it wholesale is impossible and registering pages on demand
costs 50 µs — as much as the transfer.  Instead each CPU scheduler owns
a pinned, pre-registered 1 MB staging MR; pages are ``memcpy``-ed into a
staging slot (2 µs for 8K) and the RDMA verb operates on the staging
memory.  The slot count bounds outstanding RDMA transfers per scheduler
(128 slots of 8K per 1 MB buffer in the paper's tuning).
"""

from __future__ import annotations

import math

from ..cluster import Server
from ..net.rdma import RdmaRegistrar
from ..sim import Resource
from ..sim.kernel import ProcessGenerator
from ..storage import GB, KB, MB

__all__ = ["StagingPool", "MEMCPY_BYTES_PER_US"]

#: memcpy bandwidth: 8K in 2 µs (paper Section 4.1.4).
MEMCPY_BYTES_PER_US = 4 * GB / 1e6
#: Slot granularity: one database page.
SLOT_BYTES = 8 * KB


class StagingPool:
    """Per-server pool of pinned staging MRs, one buffer per scheduler."""

    def __init__(
        self,
        server: Server,
        schedulers: int = 8,
        buffer_bytes: int = 1 * MB,
    ):
        self.server = server
        self.schedulers = schedulers
        self.buffer_bytes = buffer_bytes
        self.registrar = RdmaRegistrar(server)
        slots = schedulers * (buffer_bytes // SLOT_BYTES)
        self.slots = Resource(server.sim, capacity=slots, name=f"{server.name}.staging")
        self.regions = []
        self._initialized = False

    def initialize(self) -> ProcessGenerator:
        """Pin and pre-register every staging buffer (startup cost)."""
        if self._initialized:
            return self.regions
        for _ in range(self.schedulers):
            region = yield from self.registrar.register(self.buffer_bytes)
            self.regions.append(region)
        self._initialized = True
        return self.regions

    def slots_for(self, size: int) -> int:
        return max(1, math.ceil(size / SLOT_BYTES))

    def memcpy_us(self, size: int) -> float:
        return size / MEMCPY_BYTES_PER_US

    def acquire(self, size: int) -> ProcessGenerator:
        """Reserve staging slots for a transfer of ``size`` bytes.

        Interrupt-safe: a transfer torn down while *queued* for slots
        (provider crash, NIC failure, reliability deadline) cancels its
        request instead of leaving it behind — a stale request would be
        granted to a dead process and leak the slots forever, eventually
        exhausting the pool.
        """
        if not self._initialized:
            raise RuntimeError("staging pool used before initialize()")
        slots = self.slots_for(size)
        if self.slots.try_acquire(slots):
            return slots  # free slots: granted inline, no scheduler round-trip
        request = self.slots.request(slots)
        try:
            if not self.server.sim.tracer.enabled:
                yield request
            else:
                # Slot-pool backpressure: make the wait visible as queueing.
                with self.server.sim.tracer.span("staging.wait", cat="queue", slots=slots):
                    yield request
        except BaseException:
            self.slots.cancel(request)
            raise
        return slots

    def release(self, slots: int) -> None:
        self.slots.release(slots)
