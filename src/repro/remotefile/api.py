"""The lightweight in-memory file API over brokered remote memory.

This is Table 2 of the paper — the abstraction the whole system rests
on.  A *remote file* is a span of leased memory regions, possibly on
several memory servers.  Operations:

=============  =========================================================
Create         obtain leases on MRs covering the file size
Open           connect queue pairs to every provider server
Read / Write   translate file offset -> (MR, offset); RDMA read/write
               through a pre-registered staging buffer
Close          disconnect from the providers
Delete         relinquish the leases
=============  =========================================================

Reads and writes can be waited on synchronously (spin — the paper's
Custom design), asynchronously (yield + context switch — what stock
engines do with any I/O), or adaptively (spin briefly, then fall back
to async — the future-work policy of Section 4.1.3, implemented here as
an extension).

Failure semantics are *best effort*: if a lease expires, is revoked, or
the provider dies, accesses raise :class:`RemoteMemoryUnavailable` and
the caller (e.g. the buffer pool) falls back to disk.  Correctness is
never affected (Section 4.1.5).
"""

from __future__ import annotations

import enum
from typing import Any, Iterable

from ..broker import BrokerUnavailable, Lease, MemoryBroker
from ..cluster import Server
from ..net.fabric import NetworkDown
from ..net.rdma import RdmaError
from ..sim import Cpu, Interrupt, LatencyRecorder
from ..sim.kernel import Event, ProcessGenerator
from .staging import StagingPool

__all__ = [
    "AccessPolicy",
    "RemoteFileError",
    "RemoteMemoryUnavailable",
    "RemoteFile",
    "RemoteMemoryFilesystem",
]


class RemoteFileError(RuntimeError):
    pass


class RemoteMemoryUnavailable(RemoteFileError):
    """The backing lease/provider is gone; caller should fall back."""


class AccessPolicy(enum.Enum):
    #: Spin on the core until the RDMA completion arrives (Custom).
    SYNC = "sync"
    #: Treat the transfer as an asynchronous I/O: yield, then pay the
    #: context switch and re-scheduling penalty on completion.
    ASYNC = "async"
    #: Spin up to a threshold, then fall back to async (future work).
    ADAPTIVE = "adaptive"


#: Spin budget for the adaptive policy before yielding the core.
ADAPTIVE_SPIN_US = 25.0

#: Sentinel returned by an aborted transfer process (provider crashed or
#: the NIC interrupted it mid-flight); surfaced as RemoteMemoryUnavailable.
_ABORTED = object()


def _guarded(generator: ProcessGenerator) -> ProcessGenerator:
    """Run a transfer, converting fault aborts into the sentinel.

    Transfers run as spawned processes; an exception escaping a process
    would crash the simulation loop, so fault-induced failures (kernel
    Interrupt from a dying NIC, NetworkDown, RDMA errors from a revoked
    region) are absorbed here and re-raised as
    :class:`RemoteMemoryUnavailable` by the waiting side.
    """
    try:
        return (yield from generator)
    except (Interrupt, NetworkDown, RdmaError):
        return _ABORTED


class RemoteFile:
    """A file materialized over leased remote memory regions."""

    def __init__(
        self,
        name: str,
        owner: Server,
        leases: list[Lease],
        staging: StagingPool,
        policy: AccessPolicy = AccessPolicy.SYNC,
    ):
        if not leases:
            raise RemoteFileError("a remote file needs at least one lease")
        self.name = name
        self.owner = owner
        self.leases = leases
        self.staging = staging
        self.policy = policy
        self.size = sum(lease.region.size for lease in leases)
        self._offsets: list[int] = []
        cursor = 0
        for lease in leases:
            self._offsets.append(cursor)
            cursor += lease.region.size
        self._qps: dict[str, Any] = {}
        self.is_open = False
        self.reads = 0
        self.writes = 0
        #: Pure transfer latency of reads (RDMA completion time), as a
        #: hardware/issuing-scheduler view: excludes any wait for a core
        #: in the simulation's scheduling model.
        self.io_latency = LatencyRecorder(f"{name}.io")

    # -- lifecycle (Table 2) ----------------------------------------------

    def open(self) -> ProcessGenerator:
        """Connect an RDMA flow to every provider server."""
        from ..net.rdma import QueuePair

        for lease in self.leases:
            provider = lease.region.server
            if provider.name not in self._qps:
                # Connection setup: one control round trip per provider.
                yield from self.owner.nic.send_control(provider.nic)
                self._qps[provider.name] = QueuePair(self.owner, provider)
        self.is_open = True
        return self

    def close(self) -> ProcessGenerator:
        for qp in self._qps.values():
            qp.disconnect()
        self._qps.clear()
        self.is_open = False
        yield self.owner.sim.timeout(1.0)

    @property
    def providers(self) -> list[str]:
        return sorted({lease.provider for lease in self.leases})

    def provider_of(self, offset: int) -> str:
        """Name of the memory server backing the byte at ``offset``."""
        lease, _mr_offset, _length = self._locate(offset, 1)[0]
        return lease.provider

    # -- offset translation -------------------------------------------------

    def _locate(self, offset: int, size: int) -> list[tuple[Lease, int, int]]:
        """Split [offset, offset+size) into (lease, mr_offset, length)."""
        if offset < 0 or size < 0 or offset + size > self.size:
            raise RemoteFileError(
                f"{self.name}: range [{offset}, {offset + size}) outside file of {self.size}"
            )
        segments = []
        remaining = size
        cursor = offset
        index = 0
        # Find the first lease containing `cursor` (regions are uniform
        # in practice, but support mixed sizes).
        while index + 1 < len(self._offsets) and self._offsets[index + 1] <= cursor:
            index += 1
        while remaining > 0:
            lease = self.leases[index]
            mr_offset = cursor - self._offsets[index]
            length = min(remaining, lease.region.size - mr_offset)
            segments.append((lease, mr_offset, length))
            cursor += length
            remaining -= length
            index += 1
        return segments

    def _check(self, lease: Lease) -> None:
        if not self.is_open:
            raise RemoteFileError(f"{self.name}: file is not open")
        if not lease.is_valid(self.owner.sim.now):
            raise RemoteMemoryUnavailable(
                f"{self.name}: lease {lease.lease_id} on {lease.provider} is {lease.state.value}"
            )
        if not lease.region.server.alive:
            raise RemoteMemoryUnavailable(f"{self.name}: provider {lease.provider} is down")
        qp = self._qps.get(lease.provider)
        if qp is None or not qp.connected:
            raise RemoteMemoryUnavailable(f"{self.name}: no connection to {lease.provider}")

    # -- waiting policies ----------------------------------------------------

    def _wait(self, cpu: Cpu, transfer: Event, background: bool = False) -> ProcessGenerator:
        sim = self.owner.sim
        if background:
            # Read-ahead / write-behind I/O: never spin a core for it.
            return (yield from cpu.async_wait(transfer))
        if self.policy is AccessPolicy.SYNC:
            return (yield from cpu.sync_wait(transfer))
        if self.policy is AccessPolicy.ASYNC:
            return (yield from cpu.async_wait(transfer))
        # ADAPTIVE: hold a core for up to the spin budget.
        yield cpu.cores.request()
        start = sim.now
        try:
            index, _value = yield sim.any_of([transfer, sim.timeout(ADAPTIVE_SPIN_US)])
        finally:
            cpu._record_busy(start, sim.now - start)
            cpu.cores.release()
        if index == 0:
            return transfer.value
        return (yield from cpu.async_wait(transfer))

    # -- data path -------------------------------------------------------------

    def read(self, offset: int, size: int) -> ProcessGenerator:
        """Byte-faithful read; returns ``bytes`` of length ``size``."""
        chunks = []
        for lease, mr_offset, length in self._locate(offset, size):
            data = yield from self._transfer_read(lease, mr_offset, length, opaque=False)
            chunks.append(data)
        self.reads += 1
        return b"".join(chunks)

    def write(self, offset: int, data: bytes) -> ProcessGenerator:
        """Byte-faithful write of ``data`` at ``offset``."""
        cursor = 0
        for lease, mr_offset, length in self._locate(offset, len(data)):
            yield from self._transfer_write(
                lease, mr_offset, length, payload=data[cursor : cursor + length]
            )
            cursor += length
        self.writes += 1

    def read_nodata(self, offset: int, size: int) -> ProcessGenerator:
        """Timing-only read: full RDMA/staging path, no data movement.

        Used by I/O micro-benchmarks that sweep address spans far larger
        than host RAM; the engine always uses the byte or object paths.
        """
        for lease, mr_offset, length in self._locate(offset, size):
            yield from self._transfer_read(lease, mr_offset, length, opaque=False, nodata=True)
        self.reads += 1

    def write_nodata(self, offset: int, size: int) -> ProcessGenerator:
        """Timing-only write counterpart of :meth:`read_nodata`."""
        for lease, mr_offset, length in self._locate(offset, size):
            yield from self._transfer_write(lease, mr_offset, length, nodata=True)
        self.writes += 1

    def read_object(self, offset: int, size: int, background: bool = False) -> ProcessGenerator:
        """Opaque read: same timing as :meth:`read`, returns the object.

        ``background=True`` marks read-ahead I/O, which is waited on
        asynchronously even under the SYNC policy (spinning is reserved
        for latency-critical demand reads).
        """
        segments = self._locate(offset, size)
        if len(segments) != 1:
            raise RemoteFileError("object extents must not span memory regions")
        lease, mr_offset, length = segments[0]
        value = yield from self._transfer_read(
            lease, mr_offset, length, opaque=True, background=background
        )
        self.reads += 1
        return value

    def write_object(
        self, offset: int, size: int, obj: Any, background: bool = False
    ) -> ProcessGenerator:
        """Opaque write.  ``background=True`` is fire-and-forget: the
        call returns once the page is memcpy'd into the staging MR (the
        source buffer is immediately reusable, Section 4.2); the RDMA
        write completes asynchronously and releases the staging slots."""
        segments = self._locate(offset, size)
        if len(segments) != 1:
            raise RemoteFileError("object extents must not span memory regions")
        lease, mr_offset, length = segments[0]
        yield from self._transfer_write(
            lease, mr_offset, length, obj=obj, fire_and_forget=background
        )
        self.writes += 1

    def _transfer_read(
        self,
        lease: Lease,
        mr_offset: int,
        length: int,
        opaque: bool,
        nodata: bool = False,
        background: bool = False,
    ) -> ProcessGenerator:
        self._check(lease)
        cpu = self.owner.cpu
        qp = self._qps[lease.provider]
        sim = self.owner.sim
        slots = yield from self.staging.acquire(length)
        try:
            transfer = sim.spawn(
                _guarded(qp.read(lease.region, mr_offset, length, opaque=opaque, nodata=nodata)),
                name=f"{self.name}.rdma_read",
            )
            lease.region.server.nic.track_inflight(transfer)
            issued_at = sim.now
            transfer.add_callback(
                lambda _e: self.io_latency.record(sim.now - issued_at)
            )
            value = yield from self._wait(cpu, transfer, background=background)
            if value is _ABORTED:
                raise RemoteMemoryUnavailable(
                    f"{self.name}: read aborted, provider {lease.provider} failed"
                )
            # Copy from the staging MR into the destination buffer.
            yield from cpu.compute(self.staging.memcpy_us(length))
        finally:
            self.staging.release(slots)
        return value

    def _transfer_write(
        self,
        lease: Lease,
        mr_offset: int,
        length: int,
        payload: bytes | None = None,
        obj: Any = None,
        nodata: bool = False,
        fire_and_forget: bool = False,
    ) -> ProcessGenerator:
        self._check(lease)
        cpu = self.owner.cpu
        qp = self._qps[lease.provider]
        sim = self.owner.sim
        slots = yield from self.staging.acquire(length)
        released = False
        try:
            # Copy the page into the staging MR first; the source buffer
            # is reusable immediately after the memcpy (Section 4.2).
            yield from cpu.compute(self.staging.memcpy_us(length))
            if payload is not None:
                transfer = sim.spawn(
                    _guarded(qp.write(lease.region, mr_offset, payload=payload)),
                    name=f"{self.name}.rdma_write",
                )
            else:
                transfer = sim.spawn(
                    _guarded(
                        qp.write(lease.region, mr_offset, size=length, obj=obj, nodata=nodata)
                    ),
                    name=f"{self.name}.rdma_write",
                )
            lease.region.server.nic.track_inflight(transfer)
            if fire_and_forget:
                # The staging slots stay reserved until the RDMA write
                # completes; a bounded slot pool throttles runaway
                # write-behind naturally.
                released = True
                transfer.add_callback(lambda _e: self.staging.release(slots))
                return
            value = yield from self._wait(cpu, transfer)
            if value is _ABORTED:
                raise RemoteMemoryUnavailable(
                    f"{self.name}: write aborted, provider {lease.provider} failed"
                )
        finally:
            if not released:
                self.staging.release(slots)


class RemoteMemoryFilesystem:
    """Per-database-server factory for remote files (Create/Delete)."""

    def __init__(
        self,
        owner: Server,
        broker: MemoryBroker,
        staging: StagingPool | None = None,
        policy: AccessPolicy = AccessPolicy.SYNC,
    ):
        self.owner = owner
        self.broker = broker
        self.staging = staging if staging is not None else StagingPool(owner)
        self.policy = policy
        self.files: dict[str, RemoteFile] = {}
        broker.revocation_listeners[owner.name] = self._on_revocation

    def initialize(self) -> ProcessGenerator:
        yield from self.staging.initialize()

    def create(
        self,
        name: str,
        size: int,
        providers: Iterable[str] | None = None,
        spread: bool = False,
    ) -> ProcessGenerator:
        """Create a file of ``size`` bytes by leasing MRs (Table 2)."""
        if name in self.files:
            raise RemoteFileError(f"file {name!r} already exists")
        leases = yield from self.broker.acquire(
            self.owner.name, size, providers=providers, spread=spread
        )
        file = RemoteFile(name, self.owner, leases, self.staging, self.policy)
        self.files[name] = file
        return file

    def delete(self, file: RemoteFile) -> ProcessGenerator:
        """Relinquish every lease backing the file (Table 2)."""
        if file.is_open:
            yield from file.close()
        for lease in file.leases:
            yield from self.broker.release(lease)
        self.files.pop(file.name, None)

    def renewal_daemon(self, file: RemoteFile, period_us: float | None = None):
        """Keep the file's leases alive; exits when any renewal fails.

        A broker that is merely restarting (:class:`BrokerUnavailable`)
        is not a lost lease: the daemon skips the round and retries next
        period, relying on the lease duration to ride out the downtime.
        """
        period = period_us if period_us is not None else self.broker.lease_duration_us / 2
        while file.is_open:
            yield self.owner.sim.timeout(period)
            for lease in file.leases:
                try:
                    ok = yield from self.broker.renew(lease)
                except BrokerUnavailable:
                    break
                if not ok:
                    return False
        return True

    def _on_revocation(self, lease: Lease) -> None:
        # Nothing to do eagerly: files discover the revocation on next
        # access and surface RemoteMemoryUnavailable to the engine.
        pass
