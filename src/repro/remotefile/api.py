"""The lightweight in-memory file API over brokered remote memory.

This is Table 2 of the paper — the abstraction the whole system rests
on.  A *remote file* is a span of leased memory regions, possibly on
several memory servers.  Operations:

=============  =========================================================
Create         obtain leases on MRs covering the file size
Open           connect queue pairs to every provider server
Read / Write   translate file offset -> (MR, offset); RDMA read/write
               through a pre-registered staging buffer
Close          disconnect from the providers
Delete         relinquish the leases
=============  =========================================================

Reads and writes can be waited on synchronously (spin — the paper's
Custom design), asynchronously (yield + context switch — what stock
engines do with any I/O), or adaptively (spin briefly, then fall back
to async — the future-work policy of Section 4.1.3, implemented here as
an extension).

Failure semantics are *best effort*: if a lease expires, is revoked, or
the provider dies, accesses raise :class:`RemoteMemoryUnavailable` and
the caller (e.g. the buffer pool) falls back to disk.  Correctness is
never affected (Section 4.1.5).
"""

from __future__ import annotations

import enum
from typing import Any, Iterable

from ..broker import BrokerUnavailable, Lease, MemoryBroker
from ..cluster import Server
from ..net.fabric import NetworkDown
from ..net.rdma import RdmaError
from ..reliability import DeadlineExceeded, ReliabilityLayer
from ..sim import Cpu, Interrupt, LatencyRecorder
from ..telemetry.tracer import NOOP_SPAN as _NOOP_SPAN
from ..sim.kernel import Event, ProcessGenerator
from .staging import StagingPool

__all__ = [
    "AccessPolicy",
    "RemoteFileError",
    "RemoteMemoryUnavailable",
    "TornWrite",
    "RemoteFile",
    "RemoteMemoryFilesystem",
]


class RemoteFileError(RuntimeError):
    pass


class RemoteMemoryUnavailable(RemoteFileError):
    """The backing lease/provider is gone; caller should fall back."""


class TornWrite(RemoteMemoryUnavailable):
    """A multi-segment write failed after earlier segments were written.

    Carries the durably-written prefix so the caller (e.g. the buffer
    pool extension) can *invalidate* its copy of the whole range instead
    of trusting — or worse, re-reading — remote bytes left in a mixed
    old/new state.
    """

    def __init__(self, message: str, offset: int, written: int, intended: int):
        super().__init__(message)
        self.offset = offset
        self.written = written
        self.intended = intended

    @property
    def written_range(self) -> tuple[int, int]:
        """Byte range ``[start, end)`` known to have been written."""
        return (self.offset, self.offset + self.written)


class AccessPolicy(enum.Enum):
    #: Spin on the core until the RDMA completion arrives (Custom).
    SYNC = "sync"
    #: Treat the transfer as an asynchronous I/O: yield, then pay the
    #: context switch and re-scheduling penalty on completion.
    ASYNC = "async"
    #: Spin up to a threshold, then fall back to async (future work).
    ADAPTIVE = "adaptive"


#: Spin budget for the adaptive policy before yielding the core.
ADAPTIVE_SPIN_US = 25.0

#: Sentinel returned by an aborted transfer process (provider crashed or
#: the NIC interrupted it mid-flight); surfaced as RemoteMemoryUnavailable.
_ABORTED = object()


def _guarded(generator: ProcessGenerator) -> ProcessGenerator:
    """Run a transfer, converting fault aborts into the sentinel.

    Transfers run as spawned processes; an exception escaping a process
    would crash the simulation loop, so fault-induced failures (kernel
    Interrupt from a dying NIC, NetworkDown, RDMA errors from a revoked
    region) are absorbed here and re-raised as
    :class:`RemoteMemoryUnavailable` by the waiting side.
    """
    try:
        return (yield from generator)
    except (Interrupt, NetworkDown, RdmaError):
        return _ABORTED


class RemoteFile:
    """A file materialized over leased remote memory regions."""

    def __init__(
        self,
        name: str,
        owner: Server,
        leases: list[Lease],
        staging: StagingPool,
        policy: AccessPolicy = AccessPolicy.SYNC,
        reliability: ReliabilityLayer | None = None,
    ):
        if not leases:
            raise RemoteFileError("a remote file needs at least one lease")
        self.name = name
        self.owner = owner
        self.leases = leases
        self.staging = staging
        self.policy = policy
        #: Optional policy layer: deadlines, seeded retries, breaker
        #: feed and per-provider admission on every transfer.
        self.reliability = reliability
        self.size = sum(lease.region.size for lease in leases)
        self._offsets: list[int] = []
        cursor = 0
        for lease in leases:
            self._offsets.append(cursor)
            cursor += lease.region.size
        self._qps: dict[str, Any] = {}
        self.is_open = False
        self.reads = 0
        self.writes = 0
        #: Pure transfer latency of reads (RDMA completion time), as a
        #: hardware/issuing-scheduler view: excludes any wait for a core
        #: in the simulation's scheduling model.
        self.io_latency = LatencyRecorder(f"{name}.io")

    # -- lifecycle (Table 2) ----------------------------------------------

    def open(self) -> ProcessGenerator:
        """Connect an RDMA flow to every provider server."""
        from ..net.rdma import QueuePair

        for lease in self.leases:
            provider = lease.region.server
            if provider.name not in self._qps:
                # Connection setup: one control round trip per provider.
                yield from self.owner.nic.send_control(provider.nic)
                self._qps[provider.name] = QueuePair(self.owner, provider)
        self.is_open = True
        return self

    def close(self) -> ProcessGenerator:
        for qp in self._qps.values():
            qp.disconnect()
        self._qps.clear()
        self.is_open = False
        yield self.owner.sim.timeout(1.0)

    @property
    def providers(self) -> list[str]:
        return sorted({lease.provider for lease in self.leases})

    def provider_of(self, offset: int) -> str:
        """Name of the memory server backing the byte at ``offset``."""
        lease, _mr_offset, _length = self._locate(offset, 1)[0]
        return lease.provider

    # -- offset translation -------------------------------------------------

    def _locate(self, offset: int, size: int) -> list[tuple[Lease, int, int]]:
        """Split [offset, offset+size) into (lease, mr_offset, length)."""
        if offset < 0 or size < 0 or offset + size > self.size:
            raise RemoteFileError(
                f"{self.name}: range [{offset}, {offset + size}) outside file of {self.size}"
            )
        segments = []
        remaining = size
        cursor = offset
        index = 0
        # Find the first lease containing `cursor` (regions are uniform
        # in practice, but support mixed sizes).
        while index + 1 < len(self._offsets) and self._offsets[index + 1] <= cursor:
            index += 1
        while remaining > 0:
            lease = self.leases[index]
            mr_offset = cursor - self._offsets[index]
            length = min(remaining, lease.region.size - mr_offset)
            segments.append((lease, mr_offset, length))
            cursor += length
            remaining -= length
            index += 1
        return segments

    def _check(self, lease: Lease) -> None:
        if not self.is_open:
            raise RemoteFileError(f"{self.name}: file is not open")
        if not lease.is_valid(self.owner.sim.now):
            raise RemoteMemoryUnavailable(
                f"{self.name}: lease {lease.lease_id} on {lease.provider} is {lease.state.value}"
            )
        if not lease.region.server.alive:
            raise RemoteMemoryUnavailable(f"{self.name}: provider {lease.provider} is down")
        qp = self._qps.get(lease.provider)
        if qp is None or not qp.connected:
            raise RemoteMemoryUnavailable(f"{self.name}: no connection to {lease.provider}")

    # -- waiting policies ----------------------------------------------------

    def _wait(self, cpu: Cpu, transfer: Event, background: bool = False) -> ProcessGenerator:
        sim = self.owner.sim
        if background:
            # Read-ahead / write-behind I/O: never spin a core for it.
            return (yield from cpu.async_wait(transfer))
        if self.policy is AccessPolicy.SYNC:
            return (yield from cpu.sync_wait(transfer))
        if self.policy is AccessPolicy.ASYNC:
            return (yield from cpu.async_wait(transfer))
        # ADAPTIVE: hold a core for up to the spin budget.
        yield from cpu.acquire_core()
        start = sim.now
        try:
            index, _value = yield sim.any_of([transfer, sim.timeout(ADAPTIVE_SPIN_US)])
        finally:
            cpu._record_busy(start, sim.now - start)
            cpu.cores.release()
        if index == 0:
            return transfer.value
        return (yield from cpu.async_wait(transfer))

    # -- data path -------------------------------------------------------------

    def read(self, offset: int, size: int) -> ProcessGenerator:
        """Byte-faithful read; returns ``bytes`` of length ``size``."""
        chunks = []
        for lease, mr_offset, length in self._locate(offset, size):
            data = yield from self._transfer_read(lease, mr_offset, length, opaque=False)
            chunks.append(data)
        self.reads += 1
        return b"".join(chunks)

    def write(self, offset: int, data: bytes) -> ProcessGenerator:
        """Byte-faithful write of ``data`` at ``offset``.

        A write spanning several leases is not atomic: if a later
        segment fails after an earlier one was written, the remote range
        is torn and :class:`TornWrite` reports the written prefix so the
        caller can invalidate rather than re-read.
        """
        cursor = 0
        for lease, mr_offset, length in self._locate(offset, len(data)):
            try:
                yield from self._transfer_write(
                    lease, mr_offset, length, payload=data[cursor : cursor + length]
                )
            except (RemoteFileError, DeadlineExceeded) as exc:
                self._raise_torn(offset, cursor, len(data), lease, exc)
            cursor += length
        self.writes += 1

    def _raise_torn(
        self, offset: int, written: int, intended: int, lease: Lease, cause: BaseException
    ) -> None:
        """Re-raise a segment failure, as :class:`TornWrite` if torn."""
        if written > 0:
            raise TornWrite(
                f"{self.name}: write of {intended} bytes at {offset} torn after "
                f"{written} bytes (segment on {lease.provider} failed)",
                offset=offset,
                written=written,
                intended=intended,
            ) from cause
        raise cause

    def read_nodata(self, offset: int, size: int) -> ProcessGenerator:
        """Timing-only read: full RDMA/staging path, no data movement.

        Used by I/O micro-benchmarks that sweep address spans far larger
        than host RAM; the engine always uses the byte or object paths.
        """
        for lease, mr_offset, length in self._locate(offset, size):
            yield from self._transfer_read(lease, mr_offset, length, opaque=False, nodata=True)
        self.reads += 1

    def write_nodata(self, offset: int, size: int) -> ProcessGenerator:
        """Timing-only write counterpart of :meth:`read_nodata`."""
        cursor = 0
        for lease, mr_offset, length in self._locate(offset, size):
            try:
                yield from self._transfer_write(lease, mr_offset, length, nodata=True)
            except (RemoteFileError, DeadlineExceeded) as exc:
                self._raise_torn(offset, cursor, size, lease, exc)
            cursor += length
        self.writes += 1

    def read_object(self, offset: int, size: int, background: bool = False) -> ProcessGenerator:
        """Opaque read: same timing as :meth:`read`, returns the object.

        ``background=True`` marks read-ahead I/O, which is waited on
        asynchronously even under the SYNC policy (spinning is reserved
        for latency-critical demand reads).
        """
        segments = self._locate(offset, size)
        if len(segments) != 1:
            raise RemoteFileError("object extents must not span memory regions")
        lease, mr_offset, length = segments[0]
        value = yield from self._transfer_read(
            lease, mr_offset, length, opaque=True, background=background
        )
        self.reads += 1
        return value

    def write_object(
        self, offset: int, size: int, obj: Any, background: bool = False,
        on_abort: Any = None,
    ) -> ProcessGenerator:
        """Opaque write.  ``background=True`` is fire-and-forget: the
        call returns once the page is memcpy'd into the staging MR (the
        source buffer is immediately reusable, Section 4.2); the RDMA
        write completes asynchronously and releases the staging slots.
        ``on_abort`` is invoked if that asynchronous transfer is later
        aborted (provider crash, write-behind deadline): the remote
        bytes are then unknown and the caller must invalidate them."""
        segments = self._locate(offset, size)
        if len(segments) != 1:
            raise RemoteFileError("object extents must not span memory regions")
        lease, mr_offset, length = segments[0]
        yield from self._transfer_write(
            lease, mr_offset, length, obj=obj, fire_and_forget=background,
            on_abort=on_abort,
        )
        self.writes += 1

    def _retryable(self, lease: Lease) -> bool:
        """May a failed read on ``lease`` be reissued at all?"""
        try:
            self._check(lease)
        except RemoteFileError:
            return False
        return True

    def _transfer_read(
        self,
        lease: Lease,
        mr_offset: int,
        length: int,
        opaque: bool,
        nodata: bool = False,
        background: bool = False,
    ) -> ProcessGenerator:
        layer = self.reliability
        if layer is None:
            return (
                yield from self._transfer_read_once(
                    lease, mr_offset, length, opaque, nodata=nodata, background=background
                )
            )
        sim = self.owner.sim
        provider = lease.provider
        attempt = 0
        while True:
            if not layer.breakers.allow(provider):
                raise RemoteMemoryUnavailable(
                    f"{self.name}: provider {provider} is quarantined (circuit open)"
                )
            try:
                if sim.tracer.enabled:
                    with sim.tracer.span("rfile.attempt", provider=provider, attempt=attempt):
                        value = yield from layer.with_deadline(
                            self._transfer_read_once(
                                lease, mr_offset, length, opaque, nodata=nodata,
                                background=background,
                            ),
                            layer.policy.read_deadline_us,
                            family="read",
                            name=f"{self.name}.read@{provider}",
                        )
                else:
                    value = yield from layer.with_deadline(
                        self._transfer_read_once(
                            lease, mr_offset, length, opaque, nodata=nodata,
                            background=background,
                        ),
                        layer.policy.read_deadline_us,
                        family="read",
                        name=f"{self.name}.read@{provider}",
                    )
            except Interrupt:
                # Abandoned from outside (hedged backup won, caller
                # killed): not a verdict on the provider — but a
                # HALF_OPEN trial slot consumed by allow() above must
                # be returned or the breaker wedges.
                layer.breakers.record_abandoned(provider)
                raise
            except (RemoteMemoryUnavailable, DeadlineExceeded):
                layer.breakers.record_failure(provider)
                attempt += 1
                # One-sided RDMA reads are idempotent: reissue while the
                # retry budget lasts and the lease still looks usable.
                if not layer.retry.allows(attempt) or not self._retryable(lease):
                    raise
                layer.note_retry("read")
                # The backoff sleep is a child span, so retried reads
                # show up as attempt/backoff/attempt chains in traces.
                with sim.tracer.span("reliability.backoff", cat="queue", attempt=attempt):
                    yield sim.timeout(layer.retry.backoff_us(attempt))
            else:
                layer.breakers.record_success(provider)
                return value

    def _transfer_read_once(
        self,
        lease: Lease,
        mr_offset: int,
        length: int,
        opaque: bool,
        nodata: bool = False,
        background: bool = False,
    ) -> ProcessGenerator:
        self._check(lease)
        cpu = self.owner.cpu
        qp = self._qps[lease.provider]
        sim = self.owner.sim
        ticket = None
        if self.reliability is not None:
            ticket = yield from self.reliability.admission.enter(lease.provider)
        slots = None
        transfer = None
        tracer = sim.tracer
        span = (
            tracer.span("rfile.read", provider=lease.provider, size=length)
            if tracer.enabled
            else _NOOP_SPAN
        )
        try:
            slots = yield from self.staging.acquire(length)
            transfer = sim.spawn(
                _guarded(qp.read(lease.region, mr_offset, length, opaque=opaque, nodata=nodata)),
                name=f"{self.name}.rdma_read",
            )
            lease.region.server.nic.track_inflight(transfer)
            issued_at = sim.now
            transfer.add_callback(
                lambda _e: self.io_latency.record(sim.now - issued_at)
            )
            value = yield from self._wait(cpu, transfer, background=background)
            if value is _ABORTED:
                raise RemoteMemoryUnavailable(
                    f"{self.name}: read aborted, provider {lease.provider} failed"
                )
            # Copy from the staging MR into the destination buffer.
            yield from cpu.compute(self.staging.memcpy_us(length))
        finally:
            span.close()
            if transfer is not None:
                # If the caller is abandoning this read (deadline fired,
                # a hedged backup won, an interrupt), kill the transfer
                # too: a zombie read queued on — or holding — a degraded
                # NIC engine would serialize behind-the-scenes traffic
                # for its whole service time.  No-op once completed.
                transfer.interrupt(cause=f"{self.name}: caller abandoned read")
            if slots is not None:
                self.staging.release(slots)
            if ticket is not None:
                ticket.release()
        return value

    def _transfer_write(
        self,
        lease: Lease,
        mr_offset: int,
        length: int,
        payload: bytes | None = None,
        obj: Any = None,
        nodata: bool = False,
        fire_and_forget: bool = False,
        on_abort: Any = None,
    ) -> ProcessGenerator:
        layer = self.reliability
        if layer is None:
            return (
                yield from self._transfer_write_once(
                    lease, mr_offset, length,
                    payload=payload, obj=obj, nodata=nodata, fire_and_forget=fire_and_forget,
                    on_abort=on_abort,
                )
            )
        provider = lease.provider
        if not layer.breakers.allow(provider):
            raise RemoteMemoryUnavailable(
                f"{self.name}: provider {provider} is quarantined (circuit open)"
            )
        try:
            value = yield from layer.with_deadline(
                self._transfer_write_once(
                    lease, mr_offset, length,
                    payload=payload, obj=obj, nodata=nodata, fire_and_forget=fire_and_forget,
                    on_abort=on_abort,
                ),
                layer.policy.write_deadline_us,
                family="write",
                name=f"{self.name}.write@{provider}",
            )
        except Interrupt:
            # Abandoned from outside: no verdict, but give back the
            # HALF_OPEN trial slot allow() consumed (see _transfer_read).
            layer.breakers.record_abandoned(provider)
            raise
        except (RemoteMemoryUnavailable, DeadlineExceeded):
            # Writes are NOT retried — a reissued write is not idempotent
            # once a torn prefix may exist — but the outcome still feeds
            # the provider's breaker.
            layer.breakers.record_failure(provider)
            raise
        if not fire_and_forget:
            # Fire-and-forget outcomes are reported by the completion
            # callback inside _transfer_write_once instead.
            layer.breakers.record_success(provider)
        return value

    def _transfer_write_once(
        self,
        lease: Lease,
        mr_offset: int,
        length: int,
        payload: bytes | None = None,
        obj: Any = None,
        nodata: bool = False,
        fire_and_forget: bool = False,
        on_abort: Any = None,
    ) -> ProcessGenerator:
        self._check(lease)
        cpu = self.owner.cpu
        qp = self._qps[lease.provider]
        sim = self.owner.sim
        layer = self.reliability
        ticket = None
        if layer is not None:
            ticket = yield from layer.admission.enter(lease.provider)
        slots = None
        released = False
        transfer = None
        tracer = sim.tracer
        span = (
            tracer.span("rfile.write", provider=lease.provider, size=length)
            if tracer.enabled
            else _NOOP_SPAN
        )
        try:
            slots = yield from self.staging.acquire(length)
            # Copy the page into the staging MR first; the source buffer
            # is reusable immediately after the memcpy (Section 4.2).
            yield from cpu.compute(self.staging.memcpy_us(length))
            if payload is not None:
                transfer = sim.spawn(
                    _guarded(qp.write(lease.region, mr_offset, payload=payload)),
                    name=f"{self.name}.rdma_write",
                )
            else:
                transfer = sim.spawn(
                    _guarded(
                        qp.write(lease.region, mr_offset, size=length, obj=obj, nodata=nodata)
                    ),
                    name=f"{self.name}.rdma_write",
                )
            lease.region.server.nic.track_inflight(transfer)
            if fire_and_forget:
                # The staging slots stay reserved until the RDMA write
                # completes; a bounded slot pool throttles runaway
                # write-behind naturally.
                released = True
                provider = lease.provider

                def _complete(_e, slots=slots, ticket=ticket):
                    self.staging.release(slots)
                    if ticket is not None:
                        ticket.release()
                    aborted = transfer.value is _ABORTED
                    if layer is not None:
                        if aborted:
                            layer.breakers.record_failure(provider)
                        else:
                            layer.breakers.record_success(provider)
                    if aborted and on_abort is not None:
                        on_abort()

                transfer.add_callback(_complete)
                if layer is not None and layer.policy.write_deadline_us is not None:
                    # Nobody waits on a write-behind transfer, so the
                    # deadline wrapping the caller never covers it; an
                    # unbounded write parked on a browned-out link would
                    # hold the provider's NIC engine (and its staging
                    # slots) for the whole degraded service time.
                    budget = layer.policy.write_deadline_us

                    def _watchdog(transfer=transfer):
                        index, _ = yield sim.any_of([transfer, sim.timeout(budget)])
                        if index == 1:
                            layer.note_deadline("write")
                            transfer.interrupt(
                                cause=f"{self.name}: write-behind deadline ({budget:g}us)"
                            )

                    sim.spawn(_watchdog(), name=f"{self.name}.write_watchdog")
                return
            value = yield from self._wait(cpu, transfer)
            if value is _ABORTED:
                raise RemoteMemoryUnavailable(
                    f"{self.name}: write aborted, provider {lease.provider} failed"
                )
        finally:
            span.close()
            if not released:
                if transfer is not None:
                    # Foreground write abandoned mid-flight (deadline or
                    # interrupt): the caller already treats the remote
                    # bytes as unknown, so finish the abandonment — free
                    # the NIC engine instead of letting a zombie write
                    # hold it.  No-op once completed.
                    transfer.interrupt(cause=f"{self.name}: caller abandoned write")
                if slots is not None:
                    self.staging.release(slots)
                if ticket is not None:
                    ticket.release()


class RemoteMemoryFilesystem:
    """Per-database-server factory for remote files (Create/Delete)."""

    def __init__(
        self,
        owner: Server,
        broker: MemoryBroker,
        staging: StagingPool | None = None,
        policy: AccessPolicy = AccessPolicy.SYNC,
        reliability: ReliabilityLayer | None = None,
    ):
        self.owner = owner
        self.broker = broker
        self.staging = staging if staging is not None else StagingPool(owner)
        self.policy = policy
        #: Shared by every file this filesystem creates: quarantined
        #: providers are avoided at lease placement, renewals get
        #: deadline + retry, transfers get the full policy set.
        self.reliability = reliability
        self.files: dict[str, RemoteFile] = {}
        broker.add_revocation_listener(owner.name, self._on_revocation)

    def initialize(self) -> ProcessGenerator:
        yield from self.staging.initialize()

    def create(
        self,
        name: str,
        size: int,
        providers: Iterable[str] | None = None,
        spread: bool = False,
    ) -> ProcessGenerator:
        """Create a file of ``size`` bytes by leasing MRs (Table 2)."""
        if name in self.files:
            raise RemoteFileError(f"file {name!r} already exists")
        avoid: Iterable[str] = ()
        if self.reliability is not None:
            avoid = self.reliability.quarantined_providers()
            providers = self.reliability.restrict_providers(providers)
        leases = yield from self.broker.acquire(
            self.owner.name, size, providers=providers, spread=spread, avoid=avoid
        )
        file = RemoteFile(
            name, self.owner, leases, self.staging, self.policy,
            reliability=self.reliability,
        )
        self.files[name] = file
        return file

    def delete(self, file: RemoteFile) -> ProcessGenerator:
        """Relinquish every lease backing the file (Table 2)."""
        if file.is_open:
            yield from file.close()
        for lease in file.leases:
            yield from self.broker.release(lease)
        self.files.pop(file.name, None)

    def renewal_daemon(self, file: RemoteFile, period_us: float | None = None):
        """Keep the file's leases alive; exits when any renewal fails.

        A broker that is merely restarting (:class:`BrokerUnavailable`)
        is not a lost lease: the daemon skips the round and retries next
        period, relying on the lease duration to ride out the downtime.
        With a reliability layer attached, each renewal — an idempotent
        RPC — additionally carries the RPC deadline and is retried with
        seeded backoff before the round is abandoned.
        """
        period = period_us if period_us is not None else self.broker.lease_duration_us / 2
        layer = self.reliability
        while file.is_open:
            yield self.owner.sim.timeout(period)
            for lease in file.leases:
                try:
                    if layer is not None:
                        ok = yield from layer.call_idempotent(
                            lambda lease=lease: self.broker.renew(lease),
                            retry_on=(BrokerUnavailable,),
                            deadline_us=layer.policy.rpc_deadline_us,
                            family="rpc",
                            name=f"{file.name}.renew",
                        )
                    else:
                        ok = yield from self.broker.renew(lease)
                except (BrokerUnavailable, DeadlineExceeded):
                    break
                if not ok:
                    return False
        return True

    def _on_revocation(self, lease: Lease) -> None:
        # Nothing to do eagerly: files discover the revocation on next
        # access and surface RemoteMemoryUnavailable to the engine.
        pass
