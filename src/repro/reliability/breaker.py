"""Per-provider circuit breakers over transfer outcomes.

Classic CLOSED -> OPEN -> HALF_OPEN state machine, clocked on virtual
time:

* CLOSED — traffic flows; ``breaker_failure_threshold`` *consecutive*
  failures trip the breaker OPEN.
* OPEN — routing is refused (the buffer-pool extension skips parked
  pages on the provider and goes straight to disk) until
  ``breaker_open_us`` of quarantine has elapsed.
* HALF_OPEN — up to ``breaker_probe_quota`` trial operations are
  admitted; the first success closes the breaker, the first failure
  re-opens it (restarting the quarantine clock).

Every transition is timestamped in virtual microseconds and reported to
registered listeners, so the fault-recovery monitor can correlate
breaker behaviour with injected faults and a seeded replay reproduces
the exact same transition log.
"""

from __future__ import annotations

import enum
from typing import Callable

from ..sim import Simulator
from .policy import ReliabilityPolicy

__all__ = ["BreakerState", "CircuitBreaker", "BreakerRegistry"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Health state machine for one memory provider."""

    def __init__(
        self,
        sim: Simulator,
        provider: str,
        policy: ReliabilityPolicy,
        on_transition: Callable[[str, BreakerState, BreakerState, float], None] | None = None,
    ):
        self.sim = sim
        self.provider = provider
        self.policy = policy
        self.state = BreakerState.CLOSED
        self.on_transition = on_transition
        self.consecutive_failures = 0
        self.opened_at_us: float | None = None
        self._probes_admitted = 0
        self.successes = 0
        self.failures = 0
        self.rejections = 0

    def _transition(self, new: BreakerState) -> None:
        old, self.state = self.state, new
        if new is BreakerState.OPEN:
            self.opened_at_us = self.sim.now
        if new is BreakerState.HALF_OPEN:
            self._probes_admitted = 0
        if self.on_transition is not None:
            self.on_transition(self.provider, old, new, self.sim.now)

    def allow(self) -> bool:
        """May an operation be routed at this provider right now?

        In HALF_OPEN this consumes one probe slot, so a bounded number
        of trial operations reaches the provider per quarantine cycle.
        """
        if self.state is BreakerState.OPEN:
            if self.sim.now - float(self.opened_at_us or 0.0) >= self.policy.breaker_open_us:
                self._transition(BreakerState.HALF_OPEN)
            else:
                self.rejections += 1
                return False
        if self.state is BreakerState.HALF_OPEN:
            if self._probes_admitted >= self.policy.breaker_probe_quota:
                self.rejections += 1
                return False
            self._probes_admitted += 1
        return True

    def routable(self) -> bool:
        """Non-consuming routing check used by upper layers (BPExt).

        False only while the quarantine clock is still running; once the
        provider is due for probing this returns True so trial traffic
        reaches the data path, where :meth:`allow` meters the probes.
        """
        if self.state is BreakerState.OPEN:
            return self.sim.now - float(self.opened_at_us or 0.0) >= self.policy.breaker_open_us
        return True

    def record_success(self) -> None:
        self.successes += 1
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        self.failures += 1
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.OPEN)
        elif (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.policy.breaker_failure_threshold
        ):
            self._transition(BreakerState.OPEN)

    def record_abandoned(self) -> None:
        """A trial admitted by :meth:`allow` ended with *no* outcome.

        Happens when the trial's caller is interrupted mid-operation —
        e.g. a hedged backup read won the race and cancelled it.  The
        probe slot must be returned: otherwise a HALF_OPEN breaker
        whose whole quota went to abandoned trials would wedge, with
        every later ``allow()`` (including the health prober's)
        rejected forever.
        """
        if self.state is BreakerState.HALF_OPEN and self._probes_admitted > 0:
            self._probes_admitted -= 1


class BreakerRegistry:
    """One :class:`CircuitBreaker` per provider, created on first use."""

    def __init__(self, sim: Simulator, policy: ReliabilityPolicy):
        self.sim = sim
        self.policy = policy
        self.breakers: dict[str, CircuitBreaker] = {}
        #: ``fn(provider, old_state, new_state, at_us)`` per transition.
        self.transition_listeners: list[
            Callable[[str, BreakerState, BreakerState, float], None]
        ] = []
        #: Ordered transition log: ``(at_us, provider, old, new)``.
        self.transitions: list[tuple[float, str, str, str]] = []

    def breaker(self, provider: str) -> CircuitBreaker:
        breaker = self.breakers.get(provider)
        if breaker is None:
            breaker = CircuitBreaker(self.sim, provider, self.policy, self._on_transition)
            self.breakers[provider] = breaker
        return breaker

    def _on_transition(
        self, provider: str, old: BreakerState, new: BreakerState, at_us: float
    ) -> None:
        self.transitions.append((at_us, provider, old.value, new.value))
        for listener in self.transition_listeners:
            listener(provider, old, new, at_us)

    # -- routing / outcome feed -------------------------------------------

    def allow(self, provider: str) -> bool:
        return self.breaker(provider).allow()

    def routable(self, provider: str) -> bool:
        return self.breaker(provider).routable()

    def record_success(self, provider: str) -> None:
        self.breaker(provider).record_success()

    def record_failure(self, provider: str) -> None:
        self.breaker(provider).record_failure()

    def record_abandoned(self, provider: str) -> None:
        self.breaker(provider).record_abandoned()

    def state(self, provider: str) -> BreakerState:
        return self.breaker(provider).state

    def quarantined(self) -> list[str]:
        """Providers currently refusing traffic (OPEN breakers)."""
        return sorted(
            name
            for name, breaker in self.breakers.items()
            if breaker.state is BreakerState.OPEN
        )

    def snapshot(self) -> list[tuple[float, str, str, str]]:
        """The full transition log (deterministic replay payload)."""
        return list(self.transitions)
