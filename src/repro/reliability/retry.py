"""Seeded exponential backoff with jitter.

All randomness comes from the generator the caller hands in (a
:class:`~repro.sim.RngRegistry` stream), and all delays are virtual
microseconds: replaying a seeded experiment replays the exact same
backoff sequence.  Only *idempotent* operations may be retried — reads
(one-sided RDMA reads have no remote side effects) and lease renewals
(renewing twice is the same as renewing once).
"""

from __future__ import annotations

import numpy as np

from .policy import ReliabilityPolicy

__all__ = ["RetrySchedule"]


class RetrySchedule:
    """Computes per-attempt backoffs from the policy and a seeded stream."""

    def __init__(self, policy: ReliabilityPolicy, rng: np.random.Generator):
        self.policy = policy
        self.rng = rng
        #: Total backoffs handed out (one per retried attempt).
        self.draws = 0

    def allows(self, attempt: int) -> bool:
        """``attempt`` failures have happened; may we try again?"""
        return attempt <= self.policy.retry_attempts

    def backoff_us(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered."""
        policy = self.policy
        base = min(
            policy.retry_max_us,
            policy.retry_base_us * policy.retry_multiplier ** (attempt - 1),
        )
        self.draws += 1
        if policy.retry_jitter <= 0.0:
            return base
        # Symmetric jitter decorrelates retry storms across workers.
        scale = 1.0 + policy.retry_jitter * (2.0 * float(self.rng.random()) - 1.0)
        return base * scale
