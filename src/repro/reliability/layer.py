"""The reliability layer façade threaded through the remote-memory path.

One :class:`ReliabilityLayer` per database server bundles the four
policies (deadlines, seeded retries, per-provider circuit breakers,
hedged reads) plus staging-pool admission control, and is handed to

* every :class:`~repro.remotefile.RemoteFile` (deadline + retry +
  breaker feed + admission on the transfer path),
* the :class:`~repro.engine.bufferpool.BufferPool` and its extension
  (hedged reads, quarantine routing),
* the :class:`~repro.remotefile.RemoteMemoryFilesystem` (lease-renewal
  retries, broker-RPC deadlines, breaker-aware lease placement).

Determinism contract: the layer reads only the simulator's virtual
clock and draws only from the seeded generator it was constructed
with, so enabling it never breaks bit-identical replay.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

import numpy as np

from ..sim import Simulator
from ..sim.kernel import ProcessGenerator
from ..sim.stats import LatencyRecorder
from .admission import AdmissionController
from .breaker import BreakerRegistry
from .hedge import HedgeStats, hedge_delay_us
from .policy import DeadlineExceeded, ReliabilityPolicy
from .retry import RetrySchedule

__all__ = ["ReliabilityLayer"]


def _capture(generator: ProcessGenerator) -> ProcessGenerator:
    """Run ``generator`` in a spawned process, capturing its outcome.

    An exception escaping a spawned process would crash the simulation
    loop, so the outcome is reified as ``("ok", value)`` / ``("err",
    exc)`` and re-raised on the waiting side.
    """
    try:
        value = yield from generator
    except Exception as exc:  # Interrupt included: deadline-abandoned calls
        return ("err", exc)
    return ("ok", value)


class ReliabilityLayer:
    """Deadlines + seeded retries + breakers + hedging + admission."""

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        policy: Optional[ReliabilityPolicy] = None,
        name: str = "reliability",
    ):
        self.sim = sim
        self.rng = rng
        self.policy = policy if policy is not None else ReliabilityPolicy()
        self.name = name
        self.retry = RetrySchedule(self.policy, rng)
        self.breakers = BreakerRegistry(sim, self.policy)
        self.admission = AdmissionController(sim, self.policy)
        self.hedge = HedgeStats()
        #: Budget expiries observed, by op family ("read"/"write"/"rpc").
        self.deadline_hits: dict[str, int] = {"read": 0, "write": 0, "rpc": 0}
        #: Retried attempts, by op family.
        self.retries: dict[str, int] = {"read": 0, "rpc": 0}

    # -- deadlines ---------------------------------------------------------

    def with_deadline(
        self,
        generator: ProcessGenerator,
        deadline_us: float | None,
        family: str = "rpc",
        name: str = "",
    ) -> ProcessGenerator:
        """Run ``generator`` with a virtual-time budget.

        The call is spawned as its own process and raced against the
        budget; on expiry the process is interrupted (its holder-side
        resources unwind through their ``finally`` blocks) and
        :class:`DeadlineExceeded` is raised to the caller.
        """
        if deadline_us is None:
            return (yield from generator)
        process = self.sim.spawn(_capture(generator), name=name or f"{self.name}.deadline")
        timer = self.sim.timeout(deadline_us)
        try:
            index, outcome = yield self.sim.any_of([process, timer])
        finally:
            # Covers both the budget expiring (index == 1) and *us*
            # being interrupted while racing it (a hedged backup won,
            # an outer deadline fired).  Either way the spawned call
            # must not be orphaned: left alone it would run to
            # completion holding its admission ticket, staging slots
            # and NIC engine grant.  No-op when it already finished.
            if process.is_alive:
                process.interrupt(cause=f"{name or family} deadline ({deadline_us:g}us)")
            # Tombstone the losing timer so an early completion does not
            # leave a dead entry ticking in the scheduler heap.  (AnyOf
            # already auto-cancels orphaned losing timeouts; this keeps
            # the invariant explicit and covers the interrupted-yield
            # path, where the race never observed either child.)
            timer.cancel()
        if index == 1:
            self.note_deadline(family)
            raise DeadlineExceeded(
                f"{name or family}: exceeded {deadline_us:g}us virtual-time budget"
            )
        status, payload = outcome
        if status == "err":
            raise payload
        return payload

    # -- retries -----------------------------------------------------------

    def call_idempotent(
        self,
        factory: Any,
        retry_on: tuple[type[BaseException], ...],
        deadline_us: float | None = None,
        family: str = "rpc",
        name: str = "",
    ) -> ProcessGenerator:
        """Deadline + seeded-backoff retry for an *idempotent* RPC.

        ``factory()`` must return a fresh generator per attempt (a
        generator can only run once).  Exceptions outside ``retry_on``
        propagate immediately; ``DeadlineExceeded`` is always eligible.
        """
        retry_on = tuple(retry_on) + (DeadlineExceeded,)
        tracer = self.sim.tracer
        attempt = 0
        while True:
            try:
                with tracer.span(
                    "rpc.attempt", cat="rpc", call=name or family, attempt=attempt
                ):
                    return (
                        yield from self.with_deadline(
                            factory(), deadline_us, family=family, name=name
                        )
                    )
            except retry_on:
                attempt += 1
                if not self.retry.allows(attempt):
                    raise
                self.note_retry(family)
                # Retries surface as attempt/backoff child spans.
                with tracer.span("reliability.backoff", cat="queue", attempt=attempt):
                    yield self.sim.timeout(self.retry.backoff_us(attempt))

    # -- hedging -----------------------------------------------------------

    def hedge_delay_us(self, recorder: LatencyRecorder) -> float:
        return hedge_delay_us(self.policy, recorder)

    # -- accounting --------------------------------------------------------

    def note_deadline(self, family: str) -> None:
        self.deadline_hits[family] = self.deadline_hits.get(family, 0) + 1

    def note_retry(self, family: str) -> None:
        self.retries[family] = self.retries.get(family, 0) + 1

    def quarantined_providers(self) -> list[str]:
        return self.breakers.quarantined()

    def snapshot(self) -> dict[str, Any]:
        """Deterministic, comparable view for replay assertions."""
        return {
            "deadline_hits": dict(self.deadline_hits),
            "retries": dict(self.retries),
            "backoff_draws": self.retry.draws,
            "breaker_transitions": self.breakers.snapshot(),
            "breaker_counts": {
                name: {
                    "successes": b.successes,
                    "failures": b.failures,
                    "rejections": b.rejections,
                    "state": b.state.value,
                }
                for name, b in sorted(self.breakers.breakers.items())
            },
            "hedge": self.hedge.snapshot(),
            "admission": {
                "admitted": self.admission.admitted,
                "queued": self.admission.queued,
            },
        }

    def probe(self, owner: Any, proxy: Any) -> ProcessGenerator:
        """Active health probe: control-message round trip to a proxy.

        ``yield from``-able; records the outcome at the provider's
        breaker and returns True/False.  Used by harnesses that want an
        OPEN breaker re-admitted without waiting for trial traffic.

        Goes through :meth:`BreakerRegistry.allow` so the quarantine
        clock is honoured (an elapsed OPEN moves to HALF_OPEN, a probe
        slot is claimed, and a success there closes the breaker).
        """
        provider = proxy.server.name
        if not self.breakers.allow(provider):
            return False
        try:
            yield from self.with_deadline(
                proxy.ping(owner),
                self.policy.rpc_deadline_us,
                family="rpc",
                name=f"probe:{provider}",
            )
        except Exception:
            self.breakers.record_failure(provider)
            return False
        self.breakers.record_success(provider)
        return True

    def restrict_providers(
        self, candidates: Iterable[str] | None
    ) -> list[str] | None:
        """Drop quarantined providers from a lease-placement candidate set.

        Returns ``None`` unchanged (broker default = every provider) if
        nothing is quarantined, otherwise the healthy subset — unless
        that subset would be empty, in which case the original set is
        kept (availability beats purity: a lease on a sick provider is
        better than no lease).
        """
        bad = set(self.breakers.quarantined())
        if not bad:
            return list(candidates) if candidates is not None else None
        if candidates is None:
            return None  # broker applies its own ``avoid`` filtering
        healthy = [c for c in candidates if c not in bad]
        return healthy if healthy else list(candidates)
