"""Reliability policies for the remote-memory data path.

Deadlines, seeded retries, per-provider circuit breakers, hedged reads
and staging-pool admission control — composed by
:class:`ReliabilityLayer` and threaded through ``repro.remotefile``,
``repro.engine.bufferpool`` and the broker client paths.
"""

from .admission import AdmissionController, AdmissionTicket
from .breaker import BreakerRegistry, BreakerState, CircuitBreaker
from .hedge import HedgeStats, hedge_delay_us
from .layer import ReliabilityLayer
from .policy import DeadlineExceeded, ReliabilityPolicy, RetriesExhausted
from .retry import RetrySchedule

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "BreakerRegistry",
    "BreakerState",
    "CircuitBreaker",
    "DeadlineExceeded",
    "HedgeStats",
    "ReliabilityLayer",
    "ReliabilityPolicy",
    "RetriesExhausted",
    "RetrySchedule",
    "hedge_delay_us",
]
