"""Per-provider admission control on the staging pool.

The staging pool is shared by every remote transfer on the database
server.  Without admission control a single browned-out provider can
hold most staging slots hostage (its transfers complete slowly or not
at all) and *starve transfers to healthy providers* — the classic
head-of-line blocking brown-out.  The controller bounds in-flight
staged transfers per provider: transfer number N+1 to a slow provider
queues at that provider's gate *before* taking staging slots, so the
shared pool keeps serving everyone else.

Gates are interrupt-safe: a waiter killed mid-queue (NIC death, process
interrupt) cancels its grant request instead of leaking capacity.
"""

from __future__ import annotations

from ..sim import Simulator
from ..sim.kernel import Event, ProcessGenerator, Resource
from .policy import ReliabilityPolicy

__all__ = ["AdmissionController", "AdmissionTicket"]


class AdmissionTicket:
    """A granted slot at one provider's gate; release exactly once."""

    __slots__ = ("gate", "request", "_released")

    def __init__(self, gate: Resource, request: Event):
        self.gate = gate
        self.request = request
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        # ``cancel`` releases a granted request and forgets a queued one,
        # so tickets are safe to release from any teardown path.
        self.gate.cancel(self.request)


class AdmissionController:
    """One bounded gate per provider, created on first use."""

    def __init__(self, sim: Simulator, policy: ReliabilityPolicy):
        self.sim = sim
        self.policy = policy
        self._gates: dict[str, Resource] = {}
        self.admitted = 0
        self.queued = 0

    @property
    def enabled(self) -> bool:
        return self.policy.per_provider_inflight > 0

    def gate(self, provider: str) -> Resource:
        gate = self._gates.get(provider)
        if gate is None:
            gate = Resource(
                self.sim,
                capacity=self.policy.per_provider_inflight,
                name=f"admission.{provider}",
            )
            self._gates[provider] = gate
        return gate

    def enter(self, provider: str) -> ProcessGenerator:
        """Wait for (and claim) an in-flight slot at ``provider``.

        Returns an :class:`AdmissionTicket`; the caller must ``release``
        it when the transfer finishes, fails or is torn down.
        """
        if not self.enabled:
            return None
        gate = self.gate(provider)
        if gate.in_use >= gate.capacity:
            self.queued += 1
        request = gate.request()
        try:
            yield request
        except BaseException:
            gate.cancel(request)
            raise
        self.admitted += 1
        return AdmissionTicket(gate, request)

    def inflight(self, provider: str) -> int:
        gate = self._gates.get(provider)
        return gate.in_use if gate is not None else 0

    def queue_length(self, provider: str) -> int:
        gate = self._gates.get(provider)
        return gate.queue_length if gate is not None else 0
