"""Hedged-read accounting and delay derivation.

A hedged read issues a backup request (to local disk, or to a replica
lease when one exists) once the primary has been outstanding longer
than a tail-derived delay, and takes whichever completes first.  During
a brown-out this bounds page-read latency at roughly

    hedge delay + local-disk read time

instead of however long the degraded link takes.  The mechanics live in
the buffer pool (it owns both media); this module owns the policy — the
delay derivation — and the accounting.
"""

from __future__ import annotations

from typing import Callable

from ..sim.stats import LatencyRecorder
from .policy import ReliabilityPolicy

__all__ = ["HedgeStats", "hedge_delay_us"]


def hedge_delay_us(policy: ReliabilityPolicy, recorder: LatencyRecorder) -> float:
    """Delay before the backup read fires, derived from observed tails.

    Uses ``hedge_percentile`` of the recorded primary-read latency,
    clamped to ``[hedge_min_delay_us, hedge_max_delay_us]``.  With too
    few samples the conservative maximum is used so cold starts do not
    hedge every read.
    """
    if recorder.count < policy.hedge_min_samples:
        return policy.hedge_max_delay_us
    derived = recorder.percentile(policy.hedge_percentile)
    return min(policy.hedge_max_delay_us, max(policy.hedge_min_delay_us, derived))


class HedgeStats:
    """Counts hedge decisions; notifies listeners when a backup wins."""

    def __init__(self):
        #: Backup reads actually issued (delay elapsed before primary).
        self.issued = 0
        #: Primary still won after the backup was issued.
        self.primary_wins = 0
        #: Backup (disk) beat the browned-out primary.
        self.backup_wins = 0
        #: Primary failed outright and the backup supplied the page.
        self.rescues = 0
        #: Called (with no arguments) whenever a backup read wins.
        self.win_listeners: list[Callable[[], None]] = []

    def record_backup_win(self, rescued: bool = False) -> None:
        self.backup_wins += 1
        if rescued:
            self.rescues += 1
        for listener in self.win_listeners:
            listener()

    def snapshot(self) -> dict[str, int]:
        return {
            "issued": self.issued,
            "primary_wins": self.primary_wins,
            "backup_wins": self.backup_wins,
            "rescues": self.rescues,
        }
