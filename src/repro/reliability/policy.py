"""Reliability policy knobs and the exceptions the layer raises.

Everything here is measured in *virtual* microseconds and driven by a
seeded RNG stream — the layer never touches the wall clock, so a seeded
experiment replays bit-identically with the reliability layer enabled
(the same guarantee :mod:`repro.faults` gives for injection).

Two failure classes flow out of the data path:

* :class:`~repro.remotefile.RemoteMemoryUnavailable` — the lease or the
  provider is *gone*; parked data is lost and must re-fault from disk.
* :class:`DeadlineExceeded` — the operation blew its virtual-time
  budget on a degraded link; the data is presumed intact, the caller
  just should not keep waiting for it.

The distinction matters to the buffer-pool extension: the first
invalidates the parked slot, the second merely skips it this time.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeadlineExceeded", "RetriesExhausted", "ReliabilityPolicy"]


class DeadlineExceeded(RuntimeError):
    """A remote operation exceeded its virtual-time budget.

    Transient by definition: the backing lease may still be valid and
    the data intact — the link was just too slow to wait for.
    """


class RetriesExhausted(RuntimeError):
    """An idempotent operation failed on every attempt of its budget."""


@dataclass(frozen=True)
class ReliabilityPolicy:
    """Tuning for deadlines, retries, breakers, hedging and admission.

    The defaults target the paper's timing world: a healthy 8K remote
    read completes in ~10 µs, a local-disk page read in ~1-10 ms, and a
    browned-out link sits anywhere in between.
    """

    # -- deadlines (virtual µs; None disables the budget) ------------------
    #: Budget for one demand read attempt through the staging path.
    read_deadline_us: float | None = 5_000.0
    #: Budget for one synchronous write attempt.
    write_deadline_us: float | None = 10_000.0
    #: Budget for one broker RPC (lease renew/acquire metadata round).
    rpc_deadline_us: float | None = 5_000.0

    # -- seeded retries (idempotent ops only: reads, lease renewals) -------
    #: Extra attempts after the first failure (0 disables retry).
    retry_attempts: int = 2
    #: First backoff; subsequent backoffs multiply by ``retry_multiplier``.
    retry_base_us: float = 50.0
    retry_multiplier: float = 4.0
    retry_max_us: float = 2_000.0
    #: Jitter: each backoff is scaled by ``1 ± uniform(0, jitter)``.
    retry_jitter: float = 0.5

    # -- per-provider circuit breaker --------------------------------------
    #: Consecutive failures that trip CLOSED -> OPEN.
    breaker_failure_threshold: int = 5
    #: Quarantine time before an OPEN breaker admits probes (HALF_OPEN).
    breaker_open_us: float = 100_000.0
    #: Trial operations admitted while HALF_OPEN; one success closes the
    #: breaker, one failure re-opens it.
    breaker_probe_quota: int = 3

    # -- hedged reads -------------------------------------------------------
    hedge_enabled: bool = True
    #: Hedge delay = clamp(p(hedge_percentile) of extension read latency).
    hedge_percentile: float = 99.0
    hedge_min_delay_us: float = 100.0
    hedge_max_delay_us: float = 2_000.0
    #: Observed reads required before the percentile is trusted; until
    #: then the conservative ``hedge_max_delay_us`` is used.
    hedge_min_samples: int = 32

    # -- backpressure / admission control ----------------------------------
    #: Max in-flight staged transfers per provider; excess transfers
    #: queue at the provider's gate instead of starving the shared
    #: staging pool.  ``0`` disables admission control.
    per_provider_inflight: int = 24

    def __post_init__(self) -> None:
        if self.retry_attempts < 0:
            raise ValueError("retry_attempts must be >= 0")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_probe_quota < 1:
            raise ValueError("breaker_probe_quota must be >= 1")
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ValueError("retry_jitter must be in [0, 1]")
        if self.hedge_min_delay_us > self.hedge_max_delay_us:
            raise ValueError("hedge_min_delay_us must be <= hedge_max_delay_us")
        for name in ("read_deadline_us", "write_deadline_us", "rpc_deadline_us"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None")
