"""The RangeScan micro-benchmark (Section 5.2.1, Figures 7-12, 16, 24).

Short queries over a synthetic Customer table (TPC-H Customer schema,
~245-byte rows, clustered index on ``custkey``):

    SELECT sum(acctbal) FROM customer
    WHERE custkey >= @start AND custkey < @start + @range

A read-only variant aggregates; an update variant bumps the balances in
the range.  ``@start`` comes from a uniform distribution (BPExt churn)
or a hotspot distribution (priming experiments: 99 % of queries hit
20 % of the keys).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..engine import Column, Database, Schema, Table
from ..engine.costs import PER_ROW_AGG_CPU_US
from ..sim import LatencyRecorder
from ..sim.kernel import AllOf, ProcessGenerator

__all__ = [
    "CUSTOMER_SCHEMA",
    "RangeScanConfig",
    "RangeScanReport",
    "build_customer_table",
    "launch_rangescan",
    "read_query",
    "run_rangescan",
    "update_query",
]

#: TPC-H Customer schema; widths sum to ~245 bytes (paper Section 5.2.1).
CUSTOMER_SCHEMA = Schema(
    columns=(
        Column("custkey", "int", 8),
        Column("name", "str", 25),
        Column("address", "str", 40),
        Column("nationkey", "int", 8),
        Column("phone", "str", 15),
        Column("acctbal", "float", 8),
        Column("mktsegment", "str", 10),
        Column("comment", "str", 123),
    ),
    key="custkey",
)


def build_customer_table(db: Database, n_rows: int) -> Table:
    """Create and load the synthetic Customer table."""
    rows = [
        (key, f"Customer#{key:09d}", f"Addr{key}", key % 25, f"{key % 100:02d}-555",
         float(1000 + key % 9000), "BUILDING", "c" * 8)
        for key in range(n_rows)
    ]
    return db.create_table("customer", CUSTOMER_SCHEMA, rows)


@dataclass
class RangeScanConfig:
    n_rows: int = 50_000
    workers: int = 80
    queries_per_worker: int = 50
    range_size: int = 100
    update_fraction: float = 0.0
    distribution: str = "uniform"  # "uniform" | "hotspot"
    hotspot_fraction: float = 0.2  # of the key space ...
    hotspot_probability: float = 0.99  # ... absorbs this share of queries
    seed: int = 0


@dataclass
class RangeScanReport:
    queries: int = 0
    elapsed_us: float = 0.0
    latency: LatencyRecorder = field(default_factory=lambda: LatencyRecorder("rangescan"))
    update_latency: LatencyRecorder = field(
        default_factory=lambda: LatencyRecorder("rangescan.update")
    )

    @property
    def throughput_qps(self) -> float:
        return self.queries / (self.elapsed_us / 1e6) if self.elapsed_us > 0 else 0.0


def _start_keys(config: RangeScanConfig, rng: np.random.Generator, count: int) -> np.ndarray:
    top = max(1, config.n_rows - config.range_size)
    if config.distribution == "uniform":
        return rng.integers(0, top, size=count)
    hot_top = max(1, int(top * config.hotspot_fraction))
    hot = rng.random(count) < config.hotspot_probability
    keys = rng.integers(0, top, size=count)
    keys[hot] = rng.integers(0, hot_top, size=int(hot.sum()))
    return keys


def _read_query(db: Database, table: Table, start_key: int, range_size: int) -> ProcessGenerator:
    """Seek + scan + SUM(acctbal)."""
    rows = yield from table.clustered.range_scan(start_key, start_key + range_size)
    yield from db.server.cpu.compute(len(rows) * PER_ROW_AGG_CPU_US)
    balance_index = table.schema.index_of("acctbal")
    return sum(row[balance_index] for row in rows)


def _update_query(db: Database, table: Table, start_key: int, range_size: int) -> ProcessGenerator:
    """UPDATE acctbal over the range: log + mutate leaves + commit."""
    from ..engine.wal import LogRecordKind

    tree = table.clustered
    balance_index = table.schema.index_of("acctbal")
    leaf = yield from tree._descend(start_key)
    high = start_key + range_size
    touched = 0
    record = yield from db.wal.log_update(table.name, start_key, None, LogRecordKind.UPDATE)
    while leaf is not None:
        changed = False
        for index, row in enumerate(leaf.rows):
            key = tree.key_fn(row)
            if start_key <= key < high:
                new_row = list(row)
                new_row[balance_index] = row[balance_index] + 1.0
                leaf.rows[index] = tuple(new_row)
                changed = True
                touched += 1
        if changed:
            yield from db.pool.mark_dirty(leaf, lsn=record.lsn)
        if leaf.rows and tree.key_fn(leaf.rows[-1]) >= high:
            break
        next_no = leaf.meta.get("next")
        if next_no is None:
            break
        leaf = yield from db.pool.get_page(tree.store.file_id, next_no)
    yield from db.wal.log_update(table.name, start_key, None, LogRecordKind.COMMIT)
    return touched


# Public aliases: other drivers (the fleet tenant workloads) multiplex
# single queries without going through a whole RangeScanConfig run.
read_query = _read_query
update_query = _update_query


def txn_update_query(txn, table: Table, start_key: int, range_size: int) -> ProcessGenerator:
    """Transactional UPDATE over the range: per-row X locks + undo.

    The 2PL counterpart of :func:`update_query` for ``transactional``
    fleet tenants.  Keys are locked in ascending order, so concurrent
    update transactions never deadlock with each other; the price is
    one lock + log record per row instead of one per query.  The
    Customer table's keys are dense in ``[0, n_rows)``, so every key in
    the window exists.
    """
    balance_index = table.schema.index_of("acctbal")

    def bump(row: tuple) -> tuple:
        new_row = list(row)
        new_row[balance_index] = row[balance_index] + 1.0
        return tuple(new_row)

    for key in range(start_key, start_key + range_size):
        yield from txn.update(table, key, bump)
    return range_size


def launch_rangescan(db: Database, table: Table, config: RangeScanConfig,
                     rng: np.random.Generator | None = None):
    """Spawn the workload without blocking; returns (processes, finalize).

    Lets several database servers run RangeScan concurrently against a
    shared memory server (Figure 25)."""
    sim = db.sim
    rng = rng if rng is not None else np.random.default_rng(config.seed)
    total = config.workers * config.queries_per_worker
    starts = _start_keys(config, rng, total)
    updates = rng.random(total) < config.update_fraction
    report = RangeScanReport()
    begin = sim.now

    def worker(worker_index: int) -> ProcessGenerator:
        base = worker_index * config.queries_per_worker
        for query_index in range(config.queries_per_worker):
            position = base + query_index
            start_key = int(starts[position])
            query_begin = sim.now
            yield from db.server.cpu.compute(db.query_setup_cpu_us)
            if updates[position]:
                yield from _update_query(db, table, start_key, config.range_size)
                report.update_latency.record(sim.now - query_begin)
            else:
                yield from _read_query(db, table, start_key, config.range_size)
            report.latency.record(sim.now - query_begin)
            report.queries += 1

    processes = [sim.spawn(worker(index)) for index in range(config.workers)]

    def finalize() -> RangeScanReport:
        report.elapsed_us = sim.now - begin
        return report

    return processes, finalize


def run_rangescan(db: Database, table: Table, config: RangeScanConfig,
                  rng: np.random.Generator | None = None) -> RangeScanReport:
    """Drive the workload to completion; returns the report."""
    processes, finalize = launch_rangescan(db, table, config, rng=rng)
    sim = db.sim
    sim.run_until_complete(sim.spawn(_await_all(sim, processes)))
    return finalize()


def _await_all(sim, processes) -> ProcessGenerator:
    yield AllOf(sim, processes)
