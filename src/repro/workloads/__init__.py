"""Workloads: SQLIO micro-bench, RangeScan, Hash+Sort, TPC-H/DS/C-like."""

from .analytics import QuerySpec, StreamReport, improvement_histogram, run_query_streams
from .hashsort import (
    HashSortConfig,
    HashSortReport,
    build_hashsort_tables,
    hashsort_plan,
    run_hashsort,
)
from .rangescan import (
    CUSTOMER_SCHEMA,
    RangeScanConfig,
    RangeScanReport,
    build_customer_table,
    run_rangescan,
)
from .sqlio import RANDOM_8K, SEQUENTIAL_512K, SqlioPattern, SqlioResult, run_sqlio
from .tpcc import (
    DEFAULT_MIX,
    READ_MOSTLY_MIX,
    TpccConfig,
    TpccReport,
    TpccScale,
    build_tpcc_database,
    run_tpcc,
)
from .tpcds import TPCDS_QUERIES, TpcdsScale, build_tpcds_database, tpcds_query_specs
from .tpch import (
    TPCH_QUERIES,
    TPCH_SCHEMAS,
    TpchScale,
    build_tpch_database,
    generate_tpch_rows,
    install_tpch_tables,
    tpch_order_lines_plan,
    tpch_query_specs,
    tpch_returnflag_agg_plan,
    tpch_star_join_plan,
)

__all__ = [
    "CUSTOMER_SCHEMA", "DEFAULT_MIX", "HashSortConfig", "HashSortReport",
    "QuerySpec", "RANDOM_8K", "READ_MOSTLY_MIX", "RangeScanConfig",
    "RangeScanReport", "SEQUENTIAL_512K", "SqlioPattern", "SqlioResult",
    "StreamReport", "TPCDS_QUERIES", "TPCH_QUERIES", "TPCH_SCHEMAS",
    "TpccConfig", "TpccReport", "TpccScale", "TpcdsScale", "TpchScale",
    "build_customer_table", "build_hashsort_tables", "build_tpcc_database",
    "build_tpcds_database", "build_tpch_database", "generate_tpch_rows",
    "hashsort_plan", "improvement_histogram", "install_tpch_tables",
    "run_hashsort", "run_query_streams",
    "run_rangescan", "run_sqlio", "run_tpcc", "tpcds_query_specs",
    "tpch_order_lines_plan", "tpch_query_specs", "tpch_returnflag_agg_plan",
    "tpch_star_join_plan",
]
