"""The Hash+Sort micro-benchmark (Section 5.2.2, Figure 14).

    SELECT top N * FROM lineitem l JOIN orders o
    ON l.orderkey = o.orderkey ORDER BY l.extendedprice

Executed as hash join (build on orders) feeding a top-N external sort.
Local memory is large enough to cache the *data*, so the bottleneck is
TempDB: the join build and the sort both exceed their grant share and
spill — phase 1 writes (build + runs), phase 2 reads + writes (merge),
exactly the I/O phases of Figure 14(b).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import Column, Database, ExternalSort, HashJoin, Schema, Table, TableScan
from ..sim.kernel import ProcessGenerator

__all__ = [
    "LINEITEM_SCHEMA",
    "ORDERS_SCHEMA",
    "HashSortConfig",
    "HashSortReport",
    "build_hashsort_tables",
    "run_hashsort",
]

LINEITEM_SCHEMA = Schema(
    columns=(
        Column("linekey", "int", 8),       # unique clustering key
        Column("orderkey", "int", 8),
        Column("extendedprice", "float", 8),
        Column("quantity", "int", 8),
        Column("payload", "str", 670),  # SQL Server row width at SF200 incl. overheads
    ),
    key="linekey",
)

ORDERS_SCHEMA = Schema(
    columns=(
        Column("orderkey", "int", 8),
        Column("custkey", "int", 8),
        Column("totalprice", "float", 8),
        Column("orderdate", "int", 8),
        Column("payload", "str", 190),
    ),
    key="orderkey",
)


@dataclass
class HashSortConfig:
    n_orders: int = 40_000
    lines_per_order: int = 4
    top_n: int = 10_000
    #: Workspace-memory request; the admission-controlled grant will be
    #: far smaller than the join + sort need, forcing TempDB spills.
    requested_memory_bytes: int = 64 * 1024 * 1024
    seed: int = 0


@dataclass
class HashSortReport:
    elapsed_us: float
    rows_out: int
    spilled_bytes: int
    tempdb_reads: int
    tempdb_writes: int


def build_hashsort_tables(db: Database, config: HashSortConfig) -> tuple[Table, Table]:
    orders = [
        (key, key % 5000, float(key % 100_000), 19920000 + key % 2557, "o" * 8)
        for key in range(config.n_orders)
    ]
    lineitems = [
        (
            order_key * config.lines_per_order + line,
            order_key,
            float((order_key * 7919 + line * 104729) % 1_000_000) / 10.0,
            1 + (order_key + line) % 50,
            "l" * 8,
        )
        for order_key in range(config.n_orders)
        for line in range(config.lines_per_order)
    ]
    orders_table = db.create_table("orders", ORDERS_SCHEMA, orders)
    lineitem_table = db.create_table("lineitem", LINEITEM_SCHEMA, lineitems)
    return lineitem_table, orders_table


def hashsort_plan(lineitem: Table, orders: Table, top_n: int) -> ExternalSort:
    price_index = LINEITEM_SCHEMA.index_of("extendedprice")
    join = HashJoin(
        build=TableScan(orders),
        probe=TableScan(lineitem),
        build_key=lambda order: order[0],
        probe_key=lambda line: line[1],
        combine=lambda order, line: line + order,
    )
    return ExternalSort(join, key=lambda row: row[price_index], top_n=top_n)


def run_hashsort(db: Database, lineitem: Table, orders: Table,
                 config: HashSortConfig) -> HashSortReport:
    """Execute the query once and report timings (it is long-running)."""
    sim = db.sim
    plan = hashsort_plan(lineitem, orders, config.top_n)
    start = sim.now

    def job() -> ProcessGenerator:
        result = yield from db.execute(
            plan,
            requested_memory_bytes=config.requested_memory_bytes,
            memory_consumers=2,  # hash join + sort share the grant
        )
        return result

    result = sim.run_until_complete(sim.spawn(job()))
    return HashSortReport(
        elapsed_us=sim.now - start,
        rows_out=len(result.rows),
        spilled_bytes=result.metrics.spilled_bytes,
        tempdb_reads=result.metrics.tempdb_reads,
        tempdb_writes=result.metrics.tempdb_writes,
    )
