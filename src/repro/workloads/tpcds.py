"""TPC-DS-like decision-support workload (Appendix B.1, Figures 20/21).

TPC-DS at scale 300 (900 GB tuned) has a far more diverse query set
than TPC-H, and the paper measures much larger gains — 18 queries at
2-5x, 21 at 5-10x, 11 at 10-50x, and several beyond 100x.  The >100x
class comes from queries doing *sparse* index lookups over a fact table
far larger than local memory: on the HDD baseline every lookup is a
~4.5 ms seek, while remote memory serves it in tens of microseconds.

We scale down ~4000x with a star schema (store_sales fact plus
customer/item/date_dim/store dimensions) and 60 query templates spread
over five shapes that reproduce that histogram.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import (
    Column,
    Database,
    ExternalSort,
    HashAggregate,
    HashJoin,
    IndexNestedLoopJoin,
    IndexRangeScan,
    Operator,
    Schema,
    TableScan,
)
from .analytics import QuerySpec

__all__ = ["TpcdsScale", "TPCDS_QUERIES", "build_tpcds_database", "tpcds_query_specs"]

STORE_SALES = Schema(
    columns=(
        Column("ticket", "int", 8), Column("item_sk", "int", 8),
        Column("customer_sk", "int", 8), Column("sold_date_sk", "int", 8),
        Column("store_sk", "int", 8), Column("quantity", "int", 8),
        Column("sales_price", "float", 8), Column("net_profit", "float", 8),
        Column("payload", "str", 260),
    ),
    key="ticket",
)
CUSTOMER = Schema(
    columns=(
        Column("customer_sk", "int", 8), Column("birth_year", "int", 8),
        Column("state", "int", 8), Column("payload", "str", 200),
    ),
    key="customer_sk",
)
ITEM = Schema(
    columns=(
        Column("item_sk", "int", 8), Column("category", "int", 8),
        Column("brand", "int", 8), Column("price", "float", 8),
        Column("payload", "str", 180),
    ),
    key="item_sk",
)
DATE_DIM = Schema(
    columns=(
        Column("date_sk", "int", 8), Column("year", "int", 8),
        Column("moy", "int", 8), Column("payload", "str", 60),
    ),
    key="date_sk",
)

DATE_SPAN = 2557


@dataclass(frozen=True)
class TpcdsScale:
    sales: int = 40_000
    customers: int = 5_000
    items: int = 2_000

    @property
    def dates(self) -> int:
        return DATE_SPAN


def build_tpcds_database(db: Database, scale: TpcdsScale = TpcdsScale(), seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    # Fact rows arrive roughly in date order (as in a real warehouse):
    # sold_date correlates with the clustering key plus ingestion noise.
    # Date-window queries therefore touch near-contiguous fact pages
    # (cacheable, partly sequential), while per-customer and per-item
    # lookups remain scattered — that split is what spreads the paper's
    # improvement histogram (Figure 21) across 2x to >100x.
    jitter = rng.normal(0.0, 8.0, size=scale.sales)
    sales = [
        (
            key,
            int(rng.integers(0, scale.items)),
            int(rng.integers(0, scale.customers)),
            int(min(DATE_SPAN - 1, max(0, key * DATE_SPAN // scale.sales + jitter[key]))),
            int(rng.integers(0, 50)),
            int(rng.integers(1, 20)),
            float(rng.integers(100, 30_000)) / 100.0,
            float(rng.integers(-2000, 10_000)) / 100.0,
            "s",
        )
        for key in range(scale.sales)
    ]
    customers = [
        (key, 1920 + key % 80, key % 50, "c") for key in range(scale.customers)
    ]
    items = [
        (key, key % 20, key % 100, float(100 + key % 900), "i")
        for key in range(scale.items)
    ]
    dates = [(key, 1998 + key // 365, 1 + (key // 30) % 12, "d") for key in range(DATE_SPAN)]
    tables = {
        "store_sales": db.create_table("store_sales", STORE_SALES, sales),
        "customer": db.create_table("customer", CUSTOMER, customers),
        "item": db.create_table("item", ITEM, items),
        "date_dim": db.create_table("date_dim", DATE_DIM, dates),
    }
    tables["_indexes"] = {
        "ss.customer_sk": db.create_secondary_index(tables["store_sales"], "customer_sk"),
        "ss.item_sk": db.create_secondary_index(tables["store_sales"], "item_sk"),
        "ss.sold_date_sk": db.create_secondary_index(tables["store_sales"], "sold_date_sk"),
    }
    tables["_scale"] = scale
    return tables


_MB = 1024 * 1024


def _reporting_scan(db, tables, rng, fraction: float):
    """Reporting rollup: scan + expression-dense aggregate (<2x)."""
    sales = tables["store_sales"]
    cutoff = int(DATE_SPAN * fraction)
    plan = HashAggregate(
        TableScan(
            sales,
            predicate=lambda row: row[3] < cutoff,
            extra_cpu_per_row_us=1.6,
        ),
        group_key=lambda row: row[4],
        init=lambda: 0.0,
        update=lambda acc, row: acc + row[6] * row[5],
    )
    return plan, 1 * _MB, 1


class _WithScanLeg(Operator):
    """Run a side scan (EXISTS / correlated-subquery leg) before the
    main child, passing the child's rows through unchanged."""

    def __init__(self, child, scan):
        self.child = child
        self.scan = scan
        self.row_bytes = child.row_bytes

    def run(self, ctx):
        yield from self.scan.run(ctx)
        rows = yield from self.child.run(ctx)
        return rows


def _date_window_join(db, tables, rng, days: int):
    """Date-window fact slice + dimension hash join (2-10x).

    The fact table is roughly date-ordered, so the window's lookups are
    clustered; a scan leg (correlated subquery) adds CPU on both sides,
    keeping these in the paper's 2-10x band."""
    sales = tables["store_sales"]
    item = tables["item"]
    date_index = tables["_indexes"]["ss.sold_date_sk"]
    start = int(rng.integers(0, max(1, DATE_SPAN - days)))
    entries = IndexRangeScan(date_index, start, start + days, row_bytes=24)
    entries = _WithScanLeg(
        entries,
        TableScan(sales, predicate=lambda row: False, extra_cpu_per_row_us=0.5),
    )
    fact_rows = IndexNestedLoopJoin(
        outer=entries,
        inner_tree=sales.clustered,
        outer_key=lambda entry: entry[1],
        combine=lambda entry, sale: sale,
        lookup_cpu_us=25.0,
    )
    joined = HashJoin(
        build=TableScan(item),
        probe=fact_rows,
        build_key=lambda it: it[0],
        probe_key=lambda sale: sale[1],
        combine=lambda it, sale: sale + (it[1],),
    )
    plan = HashAggregate(
        joined,
        group_key=lambda row: row[-1],
        init=lambda: 0.0,
        update=lambda acc, row: acc + row[6],
    )
    return plan, 2 * _MB, 1


def _sparse_customer_lookup(db, tables, rng, customers: int, lookup_cpu: float = 30.0):
    """Cross-channel per-customer analysis: sparse fact lookups.

    Each sampled customer contributes ~a dozen scattered fact rows; on
    the HDD baseline almost every one is a full seek (the 10-100x and
    >100x buckets of Figure 21)."""
    sales = tables["store_sales"]
    cust_index = tables["_indexes"]["ss.customer_sk"]
    scale: TpcdsScale = tables["_scale"]
    start = int(rng.integers(0, max(1, scale.customers - customers)))
    entries = IndexRangeScan(cust_index, start, start + customers, row_bytes=24)
    rows = IndexNestedLoopJoin(
        outer=entries,
        inner_tree=sales.clustered,
        outer_key=lambda entry: entry[1],
        combine=lambda entry, sale: sale,
        lookup_cpu_us=lookup_cpu,
    )
    plan = HashAggregate(
        rows,
        group_key=lambda sale: sale[2] % 10,
        init=lambda: 0.0,
        update=lambda acc, sale: acc + sale[7],
    )
    return plan, 1 * _MB, 1


def _item_affinity(db, tables, rng, items: int):
    """Item-affinity analysis: sparse item_sk lookups (10-50x)."""
    sales = tables["store_sales"]
    item_index = tables["_indexes"]["ss.item_sk"]
    scale: TpcdsScale = tables["_scale"]
    start = int(rng.integers(0, max(1, scale.items - items)))
    entries = IndexRangeScan(item_index, start, start + items, row_bytes=24)
    rows = IndexNestedLoopJoin(
        outer=entries,
        inner_tree=sales.clustered,
        outer_key=lambda entry: entry[1],
        combine=lambda entry, sale: sale,
        lookup_cpu_us=70.0,
    )
    plan = HashAggregate(
        rows,
        group_key=lambda sale: sale[1] % 8,
        init=lambda: (0, 0.0),
        update=lambda acc, sale: (acc[0] + 1, acc[1] + sale[6]),
    )
    return plan, 1 * _MB, 1


def _spill_rollup(db, tables, rng, fraction: float, top_n: int):
    """Wide join + ranked rollup: spills under a capped grant."""
    sales = tables["store_sales"]
    customer = tables["customer"]
    cutoff = int(DATE_SPAN * fraction)
    join = HashJoin(
        build=TableScan(customer),
        probe=TableScan(sales, predicate=lambda row: row[3] < cutoff),
        build_key=lambda cust: cust[0],
        probe_key=lambda sale: sale[2],
        combine=lambda cust, sale: sale + cust[1:3],
    )
    plan = ExternalSort(join, key=lambda row: row[7], reverse=True, top_n=top_n)
    return plan, 32 * _MB, 2


def tpcds_query_specs() -> list[QuerySpec]:
    """60 templates spanning the Figure 21 improvement spectrum."""

    def spec(name, builder, **kwargs):
        return QuerySpec(
            name=name,
            factory=lambda db, tables, rng: builder(db, tables, rng, **kwargs),
        )

    specs: list[QuerySpec] = []
    # 8 reporting scans: CPU-bound, <2x.
    for index, fraction in enumerate([0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.95]):
        specs.append(spec(f"R{index + 1}", _reporting_scan, fraction=fraction))
    # 18 date-window joins: 2-5x.
    for index in range(18):
        specs.append(spec(f"W{index + 1}", _date_window_join, days=15 + index * 6))
    # 16 item-affinity: 5-10x and low 10-50x.
    for index in range(16):
        specs.append(spec(f"I{index + 1}", _item_affinity, items=5 + index * 2))
    # 14 sparse customer lookups: 10-100x (sparser = bigger gain).
    for index in range(14):
        specs.append(
            spec(f"C{index + 1}", _sparse_customer_lookup, customers=4 + index * 3,
                 lookup_cpu=(12.0 if index >= 10 else 30.0))
        )
    # 4 spill rollups: the TempDB-bound class.
    specs.append(spec("S1", _spill_rollup, fraction=0.5, top_n=1000))
    specs.append(spec("S2", _spill_rollup, fraction=0.7, top_n=2000))
    specs.append(spec("S3", _spill_rollup, fraction=0.9, top_n=500))
    specs.append(spec("S4", _spill_rollup, fraction=0.3, top_n=1500))
    return specs


TPCDS_QUERIES = tpcds_query_specs()
