"""Shared machinery for the decision-support workloads (TPC-H / TPC-DS).

Queries are *templates*: parameterized plan factories over the scaled
schema.  Each template declares its shape — scan-heavy, index-lookup
heavy, spill-heavy — which is what determines how much it benefits from
remote memory (Figures 18-21's improvement histograms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..engine import Database, Operator
from ..sim import LatencyRecorder
from ..sim.kernel import AllOf, ProcessGenerator

__all__ = ["QuerySpec", "StreamReport", "run_query_streams", "improvement_histogram"]


@dataclass(frozen=True)
class QuerySpec:
    """One benchmark query template."""

    name: str
    #: Returns (plan, requested_memory_bytes, memory_consumers).
    factory: Callable[[Database, dict, np.random.Generator], tuple[Operator, int, int]]


@dataclass
class StreamReport:
    """Results of running query streams to completion."""

    queries: int = 0
    elapsed_us: float = 0.0
    per_query: dict[str, LatencyRecorder] = field(default_factory=dict)

    @property
    def queries_per_hour(self) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        return self.queries / (self.elapsed_us / 3.6e9)

    def mean_latency_us(self, name: str) -> float:
        return self.per_query[name].mean if name in self.per_query else 0.0


def run_query_streams(
    db: Database,
    tables: dict,
    specs: list[QuerySpec],
    streams: int = 5,
    seed: int = 0,
) -> StreamReport:
    """Run ``streams`` concurrent sessions, each executing every query
    once in a stream-specific permutation (the TPC throughput test)."""
    sim = db.sim
    rng = np.random.default_rng(seed)
    report = StreamReport()
    start = sim.now

    def stream(stream_index: int) -> ProcessGenerator:
        order = np.random.default_rng(seed + stream_index).permutation(len(specs))
        for position in order:
            spec = specs[int(position)]
            plan, memory, consumers = spec.factory(db, tables, rng)
            begin = sim.now
            yield from db.execute(
                plan, requested_memory_bytes=memory, memory_consumers=consumers
            )
            report.per_query.setdefault(spec.name, LatencyRecorder(spec.name)).record(
                sim.now - begin
            )
            report.queries += 1

    processes = [sim.spawn(stream(index)) for index in range(streams)]

    def waiter():
        yield AllOf(sim, processes)

    sim.run_until_complete(sim.spawn(waiter()))
    report.elapsed_us = sim.now - start
    return report


def improvement_histogram(
    baseline: StreamReport,
    improved: StreamReport,
    buckets: tuple[float, ...] = (2.0, 5.0, 10.0, 50.0, 100.0),
) -> dict[str, int]:
    """Bucket per-query latency improvement factors (Figures 19/21).

    Returns ``{"<2x": n, "2-5x": n, ..., ">100x": n}``.
    """
    factors = []
    for name, recorder in baseline.per_query.items():
        improved_mean = improved.mean_latency_us(name)
        if improved_mean > 0:
            factors.append(recorder.mean / improved_mean)
    labels = ["<%gx" % buckets[0]]
    for low, high in zip(buckets, buckets[1:]):
        labels.append("%g-%gx" % (low, high))
    labels.append(">%gx" % buckets[-1])
    histogram = {label: 0 for label in labels}
    for factor in factors:
        if factor < buckets[0]:
            histogram[labels[0]] += 1
            continue
        for index, (low, high) in enumerate(zip(buckets, buckets[1:])):
            if low <= factor < high:
                histogram[labels[index + 1]] += 1
                break
        else:
            histogram[labels[-1]] += 1
    return histogram
