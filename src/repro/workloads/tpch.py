"""TPC-H-like decision-support workload (Appendix B.1, Figures 18/19).

The paper runs TPC-H at scale factor 200 (840 GB after DTA-tuned
indexes) with 64 GB of local memory and 256 GB of remote BPExt.  We
scale the data ~4000x down, preserving the ratios that matter (data :
local memory : BPExt : TempDB from Table 4) and the benchmark's shape:

* 22 query templates over lineitem/orders/customer/part/supplier,
* a DTA-style physical design: clustered keys plus the non-clustered
  indexes the plans seek on,
* the three plan shapes that span the paper's improvement histogram —
  sequential scan + aggregate (CPU-bound, <2x gain), selective index
  lookups through NC indexes (random-I/O-bound, the 2-10x bucket), and
  memory-hungry join/sort queries whose grant is capped so they spill
  to TempDB (Q10/Q18 — the queries that make Custom *beat* Local
  Memory in Figure 18).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import (
    Column,
    Database,
    ExternalSort,
    HashAggregate,
    HashJoin,
    IndexNestedLoopJoin,
    IndexRangeScan,
    Operator,
    Schema,
    TableScan,
)
from ..plan import Agg, Aggregate, Join, PlanNode, Project, Scan, TopN
from .analytics import QuerySpec

__all__ = [
    "TpchScale",
    "TPCH_QUERIES",
    "TPCH_SCHEMAS",
    "build_tpch_database",
    "generate_tpch_rows",
    "install_tpch_tables",
    "tpch_query_specs",
    "tpch_star_join_plan",
    "tpch_order_lines_plan",
    "tpch_returnflag_agg_plan",
]

CUSTOMER = Schema(
    columns=(
        Column("custkey", "int", 8), Column("name", "str", 25),
        Column("nationkey", "int", 8), Column("acctbal", "float", 8),
        Column("mktsegment", "str", 10), Column("payload", "str", 160),
    ),
    key="custkey",
)
ORDERS = Schema(
    columns=(
        Column("orderkey", "int", 8), Column("custkey", "int", 8),
        Column("orderdate", "int", 8), Column("totalprice", "float", 8),
        Column("orderpriority", "int", 8), Column("payload", "str", 180),
    ),
    key="orderkey",
)
LINEITEM = Schema(
    columns=(
        Column("linekey", "int", 8), Column("orderkey", "int", 8),
        Column("partkey", "int", 8), Column("suppkey", "int", 8),
        Column("shipdate", "int", 8), Column("extendedprice", "float", 8),
        Column("discount", "float", 8), Column("quantity", "int", 8),
        Column("returnflag", "int", 8), Column("payload", "str", 250),
    ),
    key="linekey",
)
PART = Schema(
    columns=(
        Column("partkey", "int", 8), Column("brand", "int", 8),
        Column("size", "int", 8), Column("retailprice", "float", 8),
        Column("payload", "str", 140),
    ),
    key="partkey",
)
SUPPLIER = Schema(
    columns=(
        Column("suppkey", "int", 8), Column("nationkey", "int", 8),
        Column("acctbal", "float", 8), Column("payload", "str", 120),
    ),
    key="suppkey",
)

#: Days span used for orderdate/shipdate predicates.
DATE_SPAN = 2557  # ~7 years, as in TPC-H


@dataclass(frozen=True)
class TpchScale:
    """Scaled-down cardinalities (ratios follow TPC-H)."""

    orders: int = 8_000
    lines_per_order: int = 4
    customers: int = 800
    parts: int = 1_000
    suppliers: int = 100

    @property
    def lineitems(self) -> int:
        return self.orders * self.lines_per_order


#: Schema per table name, for loaders that install subsets (repro.dist
#: partitions tables across servers and loads one shard per server).
TPCH_SCHEMAS = {
    "customer": CUSTOMER,
    "orders": ORDERS,
    "lineitem": LINEITEM,
    "part": PART,
    "supplier": SUPPLIER,
}


def generate_tpch_rows(scale: TpchScale = TpchScale(), seed: int = 0) -> dict[str, list]:
    """Generate the scaled TPC-H rows, keyed by table name.

    Split out of :func:`build_tpch_database` so distributed loaders can
    partition one canonical row set across servers.  The RNG draw order
    is load-bearing: goldens depend on these exact rows.
    """
    rng = np.random.default_rng(seed)
    customers = [
        (key, f"Customer{key}", key % 25, float(key % 9000), "BUILDING", "c")
        for key in range(scale.customers)
    ]
    orders = [
        (
            key,
            int(rng.integers(0, scale.customers)),
            int(rng.integers(0, DATE_SPAN)),
            float(rng.integers(1000, 500_000)) / 100.0,
            int(rng.integers(0, 5)),
            "o",
        )
        for key in range(scale.orders)
    ]
    lineitems = []
    for order_key in range(scale.orders):
        for line in range(scale.lines_per_order):
            lineitems.append(
                (
                    order_key * scale.lines_per_order + line,
                    order_key,
                    int(rng.integers(0, scale.parts)),
                    int(rng.integers(0, scale.suppliers)),
                    int(rng.integers(0, DATE_SPAN)),
                    float(rng.integers(100, 100_000)) / 100.0,
                    float(rng.integers(0, 10)) / 100.0,
                    int(rng.integers(1, 51)),
                    int(rng.integers(0, 3)),
                    "l",
                )
            )
    parts = [
        (key, key % 25, key % 50, float(900 + key % 1000), "p")
        for key in range(scale.parts)
    ]
    suppliers = [
        (key, key % 25, float(key % 9000), "s") for key in range(scale.suppliers)
    ]
    return {
        "customer": customers,
        "orders": orders,
        "lineitem": lineitems,
        "part": parts,
        "supplier": suppliers,
    }


def install_tpch_tables(db: Database, rows: dict[str, list], scale: TpchScale) -> dict:
    """Create the TPC-H tables + DTA indexes from a generated row set."""
    tables = {
        name: db.create_table(name, schema, rows[name])
        for name, schema in TPCH_SCHEMAS.items()
    }
    # DTA-style physical design: the NC indexes the templates seek on.
    indexes = {
        "orders.orderdate": db.create_secondary_index(tables["orders"], "orderdate"),
        "orders.custkey": db.create_secondary_index(tables["orders"], "custkey"),
        "lineitem.orderkey": db.create_secondary_index(tables["lineitem"], "orderkey"),
        "lineitem.partkey": db.create_secondary_index(tables["lineitem"], "partkey"),
        "lineitem.shipdate": db.create_secondary_index(tables["lineitem"], "shipdate"),
    }
    tables["_indexes"] = indexes
    tables["_scale"] = scale
    return tables


def build_tpch_database(db: Database, scale: TpchScale = TpchScale(), seed: int = 0) -> dict:
    """Load the scaled TPC-H tables and DTA-recommended indexes."""
    return install_tpch_tables(db, generate_tpch_rows(scale, seed), scale)


# ---------------------------------------------------------------------------
# Canonical logical plans (repro.plan IR, lowered three ways by repro.dist)
# ---------------------------------------------------------------------------


def tpch_star_join_plan(top_n: int = 500, size_below: int = 25) -> PlanNode:
    """Three-table star join: part |><| lineitem |><| supplier.

    Left-deep: the first join is co-partitioned under the default TPC-H
    partitioning (part and lineitem both hash on partkey), so its
    shuffle self-ships; the second join key (suppkey) is *not* the
    intermediate's partition key, so the intermediate result shuffles
    to the supplier owners.  ``lineitem.linekey`` in the projection
    makes full-tuple ordering total.
    """
    part = Scan("part", conditions=(("size", "<", size_below),))
    first = Join(part, Scan("lineitem"), "part.partkey", "lineitem.partkey")
    star = Join(first, Scan("supplier"), "lineitem.suppkey", "supplier.suppkey")
    projected = Project(star, (
        "lineitem.linekey", "part.partkey", "part.brand",
        "supplier.suppkey", "supplier.nationkey", "lineitem.quantity",
    ))
    return TopN(projected, top_n)


def tpch_order_lines_plan(top_n: int = 500, acctbal_below: float = 4000.0) -> PlanNode:
    """Customer |><| orders |><| lineitem — a repartitioning join.

    The second join runs on orderkey, which is neither the
    customer-orders intermediate's partition key (custkey) nor
    lineitem's (partkey), so *both* inputs shuffle on an ad-hoc hash
    spec — the repartitioning case no co-located placement can serve.
    """
    customer = Scan("customer", conditions=(("acctbal", "<", acctbal_below),))
    cust_orders = Join(customer, Scan("orders"), "customer.custkey", "orders.custkey")
    lines = Join(cust_orders, Scan("lineitem"), "orders.orderkey", "lineitem.orderkey")
    projected = Project(lines, (
        "lineitem.linekey", "orders.orderkey", "customer.custkey",
        "lineitem.quantity",
    ))
    return TopN(projected, top_n)


def tpch_returnflag_agg_plan(ship_fraction: float = 0.6, top_n: int = 100) -> PlanNode:
    """Q1-style group-by over lineitem, exact across lowerings.

    Distributed placement turns the single Aggregate into a partial per
    fragment plus a final merge after a gather.  Every aggregate here
    is over *int* inputs (quantity), so partial merges are exact and
    all three strategies return identical groups — float sums would be
    order-sensitive (DESIGN.md §13).
    """
    lines = Scan(
        "lineitem", conditions=(("shipdate", "<", int(DATE_SPAN * ship_fraction)),)
    )
    agg = Aggregate(
        lines,
        group_by=("lineitem.returnflag",),
        aggs=(
            Agg("count"),
            Agg("sum", "quantity"),
            Agg("min", "quantity"),
            Agg("max", "quantity"),
            Agg("avg", "quantity"),
        ),
    )
    return TopN(agg, top_n)


# ---------------------------------------------------------------------------
# Plan shape builders
# ---------------------------------------------------------------------------

_KB = 1024
_MB = 1024 * _KB


class _WithScanLeg(Operator):
    """Run a side scan (EXISTS / anti-join leg) before the main child,
    passing the child's rows through unchanged."""

    def __init__(self, child, scan):
        self.child = child
        self.scan = scan
        self.row_bytes = child.row_bytes

    def run(self, ctx):
        yield from self.scan.run(ctx)
        rows = yield from self.child.run(ctx)
        return rows


def _scan_aggregate(db, tables, rng, fraction: float, cpu_per_row_us: float = 1.6):
    """Q1/Q6 shape: sequential scan + expression-dense aggregate.

    These queries compute many aggregates per row (Q1 has eight), so
    they are CPU-bound even off the HDD array — the <2x bucket of the
    improvement histogram.
    """
    lineitem = tables["lineitem"]
    ship_index = LINEITEM.index_of("shipdate")
    flag_index = LINEITEM.index_of("returnflag")
    cutoff = int(DATE_SPAN * fraction)
    plan = HashAggregate(
        TableScan(
            lineitem,
            predicate=lambda row: row[ship_index] < cutoff,
            extra_cpu_per_row_us=cpu_per_row_us,
        ),
        group_key=lambda row: row[flag_index],
        init=lambda: (0, 0.0),
        update=lambda acc, row: (acc[0] + 1, acc[1] + row[5]),
    )
    return plan, 1 * _MB, 1

def _date_range_lookup_join(db, tables, rng, days: int, with_scan: bool = False):
    """Q3/Q4/Q12/Q21 shape: orderdate NC range -> clustered lookups ->
    lineitem NC seeks -> clustered lookups.  Random-I/O dominated.

    ``with_scan=True`` adds a lineitem scan leg (EXISTS/anti-join style
    subplans), which dilutes the random-I/O gain into the 2-5x bucket.
    """
    orders = tables["orders"]
    lineitem = tables["lineitem"]
    date_index = tables["_indexes"]["orders.orderdate"]
    li_orderkey = tables["_indexes"]["lineitem.orderkey"]
    start = int(rng.integers(0, max(1, DATE_SPAN - days)))
    # NC index range scan yields (orderdate, orderkey) entries.
    order_entries = IndexRangeScan(date_index, start, start + days, row_bytes=24)
    if with_scan:
        order_entries = _WithScanLeg(
            order_entries,
            TableScan(lineitem, predicate=lambda row: False, extra_cpu_per_row_us=0.6),
        )
    # Lookup the order rows in the clustered index.
    order_rows = IndexNestedLoopJoin(
        outer=order_entries,
        inner_tree=orders.clustered,
        outer_key=lambda entry: entry[1],
        combine=lambda entry, order: order,
    )
    # For each order, seek the lineitem NC index, then look the rows up.
    line_entries = IndexNestedLoopJoin(
        outer=order_rows,
        inner_tree=li_orderkey,
        outer_key=lambda order: order[0],
        combine=lambda order, entry: order + (entry[1],),
    )
    joined = IndexNestedLoopJoin(
        outer=line_entries,
        inner_tree=lineitem.clustered,
        outer_key=lambda row: row[-1],
        combine=lambda row, line: row[:-1] + line,
    )
    plan = HashAggregate(
        joined,
        group_key=lambda row: row[4],  # orderpriority
        init=lambda: 0.0,
        update=lambda acc, row: acc + row[len(ORDERS.columns) + 5],
    )
    return plan, 2 * _MB, 1


def _selective_seeks(db, tables, rng, lookups: int):
    """Q2/Q14/Q17/Q19/Q20 shape: partkey seeks + clustered lookups."""
    lineitem = tables["lineitem"]
    li_partkey = tables["_indexes"]["lineitem.partkey"]
    scale: TpchScale = tables["_scale"]
    start = int(rng.integers(0, max(1, scale.parts - lookups)))
    entries = IndexRangeScan(li_partkey, start, start + lookups, row_bytes=24)
    rows = IndexNestedLoopJoin(
        outer=entries,
        inner_tree=lineitem.clustered,
        outer_key=lambda entry: entry[1],
        combine=lambda entry, line: line,
    )
    plan = HashAggregate(
        rows,
        group_key=lambda line: line[2] % 16,
        init=lambda: 0.0,
        update=lambda acc, line: acc + line[5] * (1.0 - line[6]),
    )
    return plan, 1 * _MB, 1


def _spill_join_topn(db, tables, rng, order_fraction: float, top_n: int):
    """Q10/Q18 shape: big hash join + top-N sort, grant-capped -> spills."""
    orders = tables["orders"]
    lineitem = tables["lineitem"]
    cutoff = int(DATE_SPAN * order_fraction)
    date_idx = ORDERS.index_of("orderdate")
    join = HashJoin(
        build=TableScan(orders, predicate=lambda row: row[date_idx] < cutoff),
        probe=TableScan(lineitem),
        build_key=lambda order: order[0],
        probe_key=lambda line: line[1],
        combine=lambda order, line: line + order,
    )
    plan = ExternalSort(join, key=lambda row: row[5], reverse=True, top_n=top_n)
    return plan, 64 * _MB, 2


def _multiway_join(db, tables, rng, days: int):
    """Q5/Q7/Q8/Q9 shape: three-way join with a scan side and a hash side."""
    orders = tables["orders"]
    customer = tables["customer"]
    lineitem = tables["lineitem"]
    date_index = tables["_indexes"]["orders.orderdate"]
    start = int(rng.integers(0, max(1, DATE_SPAN - days)))
    order_entries = IndexRangeScan(date_index, start, start + days, row_bytes=24)
    # Multi-way plans also stream a fact-table leg (supplier/part side).
    order_entries = _WithScanLeg(
        order_entries,
        TableScan(lineitem, predicate=lambda row: False, extra_cpu_per_row_us=0.4),
    )
    order_rows = IndexNestedLoopJoin(
        outer=order_entries,
        inner_tree=orders.clustered,
        outer_key=lambda entry: entry[1],
        combine=lambda entry, order: order,
    )
    joined = HashJoin(
        build=TableScan(customer),
        probe=order_rows,
        build_key=lambda cust: cust[0],
        probe_key=lambda order: order[1],
        combine=lambda cust, order: order + (cust[2],),
    )
    plan = HashAggregate(
        joined,
        group_key=lambda row: row[-1],  # nationkey
        init=lambda: 0.0,
        update=lambda acc, row: acc + row[3],
    )
    return plan, 4 * _MB, 1


def tpch_query_specs() -> list[QuerySpec]:
    """The 22 query templates, tuned to span the paper's histogram."""

    def spec(name, builder, **kwargs):
        return QuerySpec(
            name=name,
            factory=lambda db, tables, rng: builder(db, tables, rng, **kwargs),
        )

    return [
        # Scan-heavy, CPU-bound: small gains (<2x bucket).
        spec("Q1", _scan_aggregate, fraction=0.95),
        spec("Q6", _scan_aggregate, fraction=0.4),
        spec("Q13", _scan_aggregate, fraction=0.8),
        spec("Q15", _scan_aggregate, fraction=0.5),
        spec("Q16", _scan_aggregate, fraction=0.6),
        spec("Q22", _scan_aggregate, fraction=0.25),
        # Date-range + lookup joins: moderate random I/O (2-5x).
        spec("Q3", _date_range_lookup_join, days=90, with_scan=True),
        spec("Q4", _date_range_lookup_join, days=60, with_scan=True),
        spec("Q12", _date_range_lookup_join, days=80, with_scan=True),
        spec("Q7", _multiway_join, days=150),
        spec("Q8", _multiway_join, days=120),
        spec("Q5", _multiway_join, days=180),
        spec("Q9", _multiway_join, days=240),
        spec("Q11", _selective_seeks, lookups=60),
        spec("Q14", _selective_seeks, lookups=100),
        spec("Q17", _selective_seeks, lookups=400),
        spec("Q19", _selective_seeks, lookups=120),
        spec("Q20", _selective_seeks, lookups=160),
        spec("Q2", _selective_seeks, lookups=40),
        spec("Q21", _date_range_lookup_join, days=120, with_scan=True),
        # Memory-hungry join + top-N: spill to TempDB (Q10/Q18).
        spec("Q10", _spill_join_topn, order_fraction=0.5, top_n=2_000),
        spec("Q18", _spill_join_topn, order_fraction=0.9, top_n=1_000),
    ]


TPCH_QUERIES = tpch_query_specs()
