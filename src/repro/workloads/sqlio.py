"""SQLIO-style I/O micro-benchmark (Section 6.1, Figures 3-6).

The paper measures native I/O subsystem performance with SQLIO:

* random reads: 20 threads issuing 8 KB requests at uniform offsets,
* sequential reads: 5 threads streaming 512 KB blocks.

``run_sqlio`` drives any *target* that exposes ``read(offset, size)``
(and optionally ``write``) as a ``yield from``-able generator: block
devices, SMB clients and remote files all qualify.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim import LatencyRecorder, Simulator
from ..storage import GB, KB

__all__ = ["SqlioPattern", "SqlioResult", "run_sqlio", "launch_sqlio", "RANDOM_8K", "SEQUENTIAL_512K"]


@dataclass(frozen=True)
class SqlioPattern:
    """One SQLIO configuration."""

    name: str
    threads: int
    io_bytes: int
    random: bool
    ops_per_thread: int = 200


#: The two patterns of Figures 3 and 4.
RANDOM_8K = SqlioPattern(name="8K Random", threads=20, io_bytes=8 * KB, random=True)
SEQUENTIAL_512K = SqlioPattern(
    name="512K Sequential", threads=5, io_bytes=512 * KB, random=False
)


@dataclass
class SqlioResult:
    pattern: SqlioPattern
    elapsed_us: float
    total_bytes: int
    latency: LatencyRecorder

    @property
    def throughput_gb_per_s(self) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        return (self.total_bytes / GB) / (self.elapsed_us / 1e6)

    @property
    def mean_latency_us(self) -> float:
        return self.latency.mean


def launch_sqlio(
    sim: Simulator,
    target,
    pattern: SqlioPattern,
    span_bytes: int = 64 * GB,
    rng: np.random.Generator | None = None,
    write: bool = False,
):
    """Spawn the workload without blocking; returns (processes, finalize).

    ``finalize()`` must be called after the processes complete; it
    returns the :class:`SqlioResult`.  Used to drive several targets
    concurrently (Figures 6 and 25).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    latency = LatencyRecorder(pattern.name)
    totals = {"bytes": 0}
    start = sim.now
    io_count = pattern.threads * pattern.ops_per_thread
    if pattern.random:
        max_slot = max(1, span_bytes // pattern.io_bytes)
        offsets = rng.integers(0, max_slot, size=io_count) * pattern.io_bytes
    else:
        offsets = None

    def worker(thread_index: int):
        slice_bytes = span_bytes // pattern.threads
        base = thread_index * slice_bytes
        for op_index in range(pattern.ops_per_thread):
            if pattern.random:
                offset = int(offsets[thread_index * pattern.ops_per_thread + op_index])
            else:
                offset = base + (op_index * pattern.io_bytes) % max(
                    pattern.io_bytes, slice_bytes - pattern.io_bytes
                )
            begin = sim.now
            if write:
                yield from target.write(offset, pattern.io_bytes)
            else:
                yield from target.read(offset, pattern.io_bytes)
            latency.record(sim.now - begin)
            totals["bytes"] += pattern.io_bytes

    processes = [sim.spawn(worker(index)) for index in range(pattern.threads)]

    def finalize() -> SqlioResult:
        return SqlioResult(
            pattern=pattern,
            elapsed_us=sim.now - start,
            total_bytes=totals["bytes"],
            latency=latency,
        )

    return processes, finalize


def run_sqlio(
    sim: Simulator,
    target,
    pattern: SqlioPattern,
    span_bytes: int = 64 * GB,
    rng: np.random.Generator | None = None,
    write: bool = False,
) -> SqlioResult:
    """Run one SQLIO pattern to completion and return the measurements.

    ``span_bytes`` is the addressable range; random offsets are uniform
    over it, sequential threads stream disjoint contiguous slices.
    """
    processes, finalize = launch_sqlio(
        sim, target, pattern, span_bytes=span_bytes, rng=rng, write=write
    )
    for process in processes:
        sim.run_until_complete(process)
    return finalize()
