"""TPC-C-like OLTP workload (Appendix B.1, Figures 22/23).

Five transaction types over the classic warehouse schema.  Two mixes:

* **Default** — the standard mix (45 % NewOrder, 43 % Payment, 4 %
  each of the rest).  Its working set is the *recent* orders plus
  NURand-hot stock/items, which fits local memory and keeps shifting —
  the case where remote memory does **not** help (Figure 22, left).
* **Read-mostly** — 90 % StockLevel, which walks historical order lines
  and does uniform stock checks: a working set far larger than local
  memory, where remote memory pays off (Figure 22, right).

Every transaction runs inside a real :class:`~repro.txn.Transaction`
(WAL BEGIN/data/COMMIT records, before-image undo, automatic
abort/retry), under one of two concurrency disciplines:

* ``concurrency="district"`` (default) — writers take a single
  exclusive lock on their district for the whole transaction, readers
  run lock-free.  This reproduces the per-district serialization of
  the paper's latency discussion: no deadlocks, contention scales with
  workers per district.
* ``concurrency="2pl"`` — row-granular strict 2PL: S locks on reads
  (with lock-and-rescan validation for StockLevel's range walk), X
  locks on writes.  NewOrders of districts sharing a warehouse then
  conflict on stock rows in *random item order*, so genuine deadlocks
  arise, are detected by the wait-for graph, and retry with seeded
  backoff.  ``hot_district_fraction`` concentrates traffic on a few
  districts to dial the conflict rate up.

Shared-structure bookkeeping (recent orders, undelivered queues) is
applied via ``on_commit`` hooks, so aborted transactions leave no
trace in it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..engine import Column, Database, Schema, Table
from ..sim import LatencyRecorder
from ..sim.kernel import AllOf, ProcessGenerator
from ..txn import LockMode, Transaction

__all__ = [
    "TpccScale",
    "TpccConfig",
    "TpccReport",
    "build_tpcc_database",
    "run_tpcc",
    "DEFAULT_MIX",
    "READ_MOSTLY_MIX",
]

WAREHOUSE = Schema(
    columns=(Column("w_id", "int", 8), Column("ytd", "float", 8), Column("pad", "str", 80)),
    key="w_id",
)
DISTRICT = Schema(
    columns=(
        Column("d_key", "int", 8), Column("next_o_id", "int", 8),
        Column("ytd", "float", 8), Column("pad", "str", 80),
    ),
    key="d_key",
)
CUSTOMER = Schema(
    columns=(
        Column("c_key", "int", 8), Column("balance", "float", 8),
        Column("payment_cnt", "int", 8), Column("pad", "str", 220),
    ),
    key="c_key",
)
STOCK = Schema(
    columns=(
        Column("s_key", "int", 8), Column("quantity", "int", 8),
        Column("ytd", "int", 8), Column("pad", "str", 180),
    ),
    key="s_key",
)
ORDERS = Schema(
    columns=(
        Column("o_key", "int", 8), Column("c_key", "int", 8),
        Column("entry_d", "int", 8), Column("carrier", "int", 8),
        Column("pad", "str", 60),
    ),
    key="o_key",
)
ORDER_LINE = Schema(
    columns=(
        Column("ol_key", "int", 8), Column("o_key", "int", 8),
        Column("item", "int", 8), Column("amount", "float", 8),
        Column("pad", "str", 80),
    ),
    key="ol_key",
)

DISTRICTS_PER_WAREHOUSE = 10
CUSTOMERS_PER_DISTRICT = 30


@dataclass(frozen=True)
class TpccScale:
    warehouses: int = 20
    items: int = 600
    #: Pre-loaded historical orders per district (order-line history is
    #: the bulk of the database, as at full TPC-C scale).
    history_orders: int = 250

    @property
    def districts(self) -> int:
        return self.warehouses * DISTRICTS_PER_WAREHOUSE

    @property
    def customers(self) -> int:
        return self.districts * CUSTOMERS_PER_DISTRICT

    @property
    def stock_rows(self) -> int:
        return self.warehouses * self.items


#: Transaction mixes: (new_order, payment, order_status, delivery, stock_level).
DEFAULT_MIX = {"new_order": 0.45, "payment": 0.43, "order_status": 0.04,
               "delivery": 0.04, "stock_level": 0.04}
READ_MOSTLY_MIX = {"new_order": 0.04, "payment": 0.04, "order_status": 0.01,
                   "delivery": 0.01, "stock_level": 0.90}


@dataclass
class TpccConfig:
    scale: TpccScale = field(default_factory=TpccScale)
    workers: int = 100
    transactions_per_worker: int = 30
    mix: dict = field(default_factory=lambda: dict(DEFAULT_MIX))
    #: Fraction of item picks drawn from the hot set (NURand-like skew).
    hot_item_fraction: float = 0.9
    hot_item_share: float = 0.04
    #: Lock discipline: "district" (coarse, deadlock-free, legacy
    #: contention profile) or "2pl" (row-granular strict 2PL).
    concurrency: str = "district"
    #: Conflict knob: fraction of transactions routed to a hot subset
    #: of districts (0 disables), and the size of that subset.
    hot_district_fraction: float = 0.0
    hot_district_share: float = 0.1
    #: Record read/write history for the serializability checker.
    record_history: bool = False
    seed: int = 0


@dataclass
class TpccReport:
    transactions: int = 0
    elapsed_us: float = 0.0
    latency: LatencyRecorder = field(default_factory=lambda: LatencyRecorder("tpcc"))
    commits: int = 0
    aborts: int = 0
    deadlocks: int = 0
    retries: int = 0
    dooms: int = 0
    lock_wait_us: float = 0.0

    @property
    def throughput_tps(self) -> float:
        return self.transactions / (self.elapsed_us / 1e6) if self.elapsed_us else 0.0

    @property
    def abort_rate(self) -> float:
        attempts = self.commits + self.aborts
        return self.aborts / attempts if attempts else 0.0


class TpccState:
    """Tables plus the runtime bookkeeping the transactions need."""

    def __init__(self, db: Database, scale: TpccScale):
        self.db = db
        self.scale = scale
        self.warehouse: Table = None  # type: ignore[assignment]
        self.district: Table = None  # type: ignore[assignment]
        self.customer: Table = None  # type: ignore[assignment]
        self.stock: Table = None  # type: ignore[assignment]
        self.orders: Table = None  # type: ignore[assignment]
        self.order_line: Table = None  # type: ignore[assignment]
        self.next_order_id = 0
        self.next_line_id = 0
        #: Oldest undelivered order per district (committed only).
        self.undelivered: dict[int, list[int]] = {}
        #: o_key -> [ol_keys] for status/stock-level walks (committed only).
        self.order_lines_of: dict[int, list[int]] = {}
        self.recent_orders: dict[int, list[int]] = {}


def build_tpcc_database(db: Database, scale: TpccScale = TpccScale(), seed: int = 0) -> TpccState:
    rng = np.random.default_rng(seed)
    state = TpccState(db, scale)
    state.warehouse = db.create_table(
        "warehouse", WAREHOUSE, [(w, 0.0, "w") for w in range(scale.warehouses)]
    )
    state.district = db.create_table(
        "district", DISTRICT,
        [(d, scale.history_orders, 0.0, "d") for d in range(scale.districts)],
    )
    state.customer = db.create_table(
        "customer", CUSTOMER,
        [(c, 100.0, 0, "c") for c in range(scale.customers)],
    )
    state.stock = db.create_table(
        "stock", STOCK,
        [(s, 50 + s % 50, 0, "s") for s in range(scale.stock_rows)],
    )
    orders = []
    lines = []
    for district in range(scale.districts):
        state.recent_orders[district] = []
        state.undelivered[district] = []
        for slot in range(scale.history_orders):
            o_key = state.next_order_id
            state.next_order_id += 1
            customer = district * CUSTOMERS_PER_DISTRICT + int(
                rng.integers(0, CUSTOMERS_PER_DISTRICT)
            )
            orders.append((o_key, customer, slot, 1, "o"))
            ol_keys = []
            for _line in range(int(rng.integers(5, 16))):
                ol_key = state.next_line_id
                state.next_line_id += 1
                lines.append(
                    (ol_key, o_key, int(rng.integers(0, scale.items)),
                     float(rng.integers(100, 10_000)) / 100.0, "l")
                )
                ol_keys.append(ol_key)
            state.order_lines_of[o_key] = ol_keys
            state.recent_orders[district].append(o_key)
            state.recent_orders[district] = state.recent_orders[district][-25:]
    state.orders = db.create_table("orders", ORDERS, orders)
    state.order_line = db.create_table("order_line", ORDER_LINE, lines)
    return state


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------

def _pick_item(state: TpccState, rng, config: TpccConfig) -> int:
    """NURand-like skew: most picks come from a small hot set."""
    if rng.random() < config.hot_item_fraction:
        return int(rng.integers(0, max(1, int(state.scale.items * config.hot_item_share))))
    return int(rng.integers(0, state.scale.items))


def _row_locks(config: TpccConfig) -> bool:
    return config.concurrency == "2pl"


def new_order(
    state: TpccState, rng, config: TpccConfig, district: int, txn: Transaction
) -> ProcessGenerator:
    row_locks = _row_locks(config)
    if not row_locks:
        yield from txn.lock(("district", district), LockMode.EXCLUSIVE)
    yield from txn.update(
        state.district, district,
        lambda row: (row[0], row[1] + 1, row[2], row[3]), lock=row_locks,
    )
    o_key = state.next_order_id
    state.next_order_id += 1
    customer = district * CUSTOMERS_PER_DISTRICT + int(
        rng.integers(0, CUSTOMERS_PER_DISTRICT)
    )
    yield from txn.insert(state.orders, (o_key, customer, 0, 0, "o"), lock=row_locks)
    warehouse = district // DISTRICTS_PER_WAREHOUSE
    ol_keys = []
    # Stock rows are shared by all districts of the warehouse and are
    # locked in random item order — the deadlock source under 2PL.
    for _line in range(int(rng.integers(5, 16))):
        item = _pick_item(state, rng, config)
        stock_key = warehouse * state.scale.items + item
        yield from txn.update(
            state.stock, stock_key,
            lambda row: (row[0], max(10, row[1] - 1), row[2] + 1, row[3]),
            lock=row_locks,
        )
        ol_key = state.next_line_id
        state.next_line_id += 1
        yield from txn.insert(state.order_line, (ol_key, o_key, item, 9.99, "l"),
                              lock=row_locks)
        ol_keys.append(ol_key)

    def bookkeep() -> None:
        state.order_lines_of[o_key] = ol_keys
        state.recent_orders[district].append(o_key)
        state.recent_orders[district] = state.recent_orders[district][-25:]
        state.undelivered[district].append(o_key)

    txn.on_commit(bookkeep)


def payment(
    state: TpccState, rng, config: TpccConfig, district: int, txn: Transaction
) -> ProcessGenerator:
    row_locks = _row_locks(config)
    if not row_locks:
        yield from txn.lock(("district", district), LockMode.EXCLUSIVE)
    warehouse = district // DISTRICTS_PER_WAREHOUSE
    yield from txn.update(
        state.warehouse, warehouse,
        lambda row: (row[0], row[1] + 10.0, row[2]), lock=row_locks,
    )
    yield from txn.update(
        state.district, district,
        lambda row: (row[0], row[1], row[2] + 10.0, row[3]), lock=row_locks,
    )
    customer = district * CUSTOMERS_PER_DISTRICT + int(
        rng.integers(0, CUSTOMERS_PER_DISTRICT)
    )
    yield from txn.update(
        state.customer, customer,
        lambda row: (row[0], row[1] - 10.0, row[2] + 1, row[3]), lock=row_locks,
    )


def order_status(
    state: TpccState, rng, config: TpccConfig, district: int, txn: Transaction
) -> ProcessGenerator:
    row_locks = _row_locks(config)
    customer = district * CUSTOMERS_PER_DISTRICT + int(rng.integers(0, CUSTOMERS_PER_DISTRICT))
    yield from txn.read(state.customer, customer, lock=row_locks)
    recent = state.recent_orders.get(district) or [0]
    o_key = recent[-1]
    yield from txn.read(state.orders, o_key, lock=row_locks)
    for ol_key in state.order_lines_of.get(o_key, [])[:5]:
        yield from txn.read(state.order_line, ol_key, lock=row_locks)


def delivery(
    state: TpccState, rng, config: TpccConfig, district: int, txn: Transaction
) -> ProcessGenerator:
    # The district lock (held to commit in both modes) serializes
    # deliveries per district, so peeking the queue head and popping it
    # only on commit cannot double-deliver.
    yield from txn.lock(("district", district), LockMode.EXCLUSIVE)
    queue = state.undelivered.get(district)
    if not queue:
        return
    o_key = queue[0]
    yield from txn.update(
        state.orders, o_key,
        lambda row: (row[0], row[1], row[2], 7, row[4]), lock=_row_locks(config),
    )
    txn.on_commit(lambda: queue.pop(0))


def stock_level(
    state: TpccState, rng, config: TpccConfig, district: int, txn: Transaction
) -> ProcessGenerator:
    """Threshold check over historical order lines + uniform stock reads.

    Walks a window of *old* order lines (the paper: the read-mostly mix
    "also accesses the old data, accessing more database pages") and
    checks the stock rows of the items found — a working set spanning
    the whole stock and order-line history.
    """
    row_locks = _row_locks(config)
    warehouse = district // DISTRICTS_PER_WAREHOUSE
    window = 200
    top = max(1, state.next_line_id - window)
    # Recency-skewed: stock checks concentrate on newer history, so the
    # working set is bounded (~a third of the order-line history) and
    # extension-sized memory covers most of it.
    age = int(rng.exponential(scale=0.12 * state.next_line_id))
    start = max(0, top - 1 - age)
    lines = yield from txn.scan(state.order_line, start, start + window, lock=row_locks)
    items = {line[2] for line in lines[:60]}
    for item in items:
        stock_key = warehouse * state.scale.items + item
        yield from txn.read(state.stock, stock_key, lock=row_locks)


_TRANSACTIONS = {
    "new_order": new_order,
    "payment": payment,
    "order_status": order_status,
    "delivery": delivery,
    "stock_level": stock_level,
}


def run_tpcc(db: Database, state: TpccState, config: TpccConfig) -> TpccReport:
    """Closed-loop run: ``workers`` sessions each run their share.

    Every transaction goes through ``manager.run`` — deadlock victims
    and fault-doomed transactions roll back and retry with seeded
    backoff, so ``report.transactions`` counts *successful* commits of
    intent while the abort/retry counters expose the churn.
    """
    sim = db.sim
    manager = db.transactions()
    if config.record_history:
        manager.record_history = True
    rng = np.random.default_rng(config.seed)
    names = list(config.mix)
    weights = np.array([config.mix[name] for name in names], dtype=float)
    weights /= weights.sum()
    total = config.workers * config.transactions_per_worker
    choices = rng.choice(len(names), size=total, p=weights)
    districts = rng.integers(0, state.scale.districts, size=total)
    if config.hot_district_fraction > 0.0:
        hot_count = max(1, int(state.scale.districts * config.hot_district_share))
        hot = rng.random(total) < config.hot_district_fraction
        districts[hot] = rng.integers(0, hot_count, size=int(hot.sum()))
    report = TpccReport()
    before = manager.stats()
    start = sim.now

    def worker(worker_index: int) -> ProcessGenerator:
        base = worker_index * config.transactions_per_worker
        worker_rng = np.random.default_rng(config.seed * 7919 + worker_index)
        for index in range(config.transactions_per_worker):
            name = names[int(choices[base + index])]
            district = int(districts[base + index])
            begin = sim.now
            yield from db.server.cpu.compute(db.query_setup_cpu_us / 3)
            body = _TRANSACTIONS[name]
            yield from manager.run(
                lambda txn, body=body, district=district: body(
                    state, worker_rng, config, district, txn
                ),
                name=name,
            )
            report.latency.record(sim.now - begin)
            report.transactions += 1

    processes = [sim.spawn(worker(index)) for index in range(config.workers)]

    def waiter():
        yield AllOf(sim, processes)

    sim.run_until_complete(sim.spawn(waiter()))
    report.elapsed_us = sim.now - start
    after = manager.stats()
    report.commits = int(after["commits"] - before["commits"])
    report.aborts = int(after["aborts"] - before["aborts"])
    report.deadlocks = int(after["deadlocks_detected"] - before["deadlocks_detected"])
    report.retries = int(after["retries"] - before["retries"])
    report.dooms = int(after["dooms"] - before["dooms"])
    report.lock_wait_us = after["lock_wait_us"] - before["lock_wait_us"]
    return report
