"""Experiment harness: Table-5 designs, cluster builders, reporting."""

from .dbbench import (
    DbSetup,
    build_database,
    prewarm_extension,
    prewarm_pool,
    rebuild_extension,
    warm_extension,
    warm_pool,
)
from .designs import DESIGNS, REMOTE_DESIGNS, TIER_SPECS, Design, DesignConfig
from .iobench import IO_DESIGNS, IoTarget, build_custom_multi, build_io_target
from .report import format_metrics, format_series, format_table

__all__ = [
    "DESIGNS", "DbSetup", "Design", "DesignConfig", "IO_DESIGNS",
    "IoTarget", "REMOTE_DESIGNS", "TIER_SPECS", "build_custom_multi",
    "build_database", "build_io_target", "format_metrics", "format_series",
    "format_table", "prewarm_extension", "prewarm_pool",
    "rebuild_extension", "warm_extension", "warm_pool",
]
