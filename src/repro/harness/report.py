"""Plain-text table/series formatting for benchmark output.

Benchmarks print the same rows/series the paper's figures plot; these
helpers keep the output uniform and diff-friendly.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_table", "format_series", "format_metrics"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned plain-text table."""
    rendered = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_metrics(registry: Any, prefix: str = "", title: str = "") -> str:
    """Render a :class:`~repro.telemetry.MetricsRegistry` as a table.

    Uses the registry's :meth:`flat` view, so histograms arrive already
    expanded into their summary statistics.  ``prefix`` narrows the
    dump to one subtree (e.g. ``"server.db"``).
    """
    flat = registry.flat(prefix)
    rows = [(name, flat[name]) for name in sorted(flat)]
    return format_table(
        ["metric", "value"], rows, title=title or f"metrics: {registry.name}"
    )


def format_series(name: str, points: Iterable[tuple[float, float]],
                  x_label: str = "t", y_label: str = "value",
                  max_points: int = 25) -> str:
    """Render a (downsampled) time series as aligned columns."""
    points = list(points)
    if len(points) > max_points:
        step = len(points) / max_points
        points = [points[int(i * step)] for i in range(max_points)]
    lines = [f"{name}  ({x_label}, {y_label})"]
    for x, y in points:
        lines.append(f"  {x:>10.2f}  {_fmt(y)}")
    return "\n".join(lines)
