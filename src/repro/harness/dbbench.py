"""Build a full engine instance from a declarative tier spec.

``build_database`` assembles the cluster (DB server + memory servers),
the storage devices, the remote-memory machinery for the plans that
need it, and a :class:`~repro.engine.Database` wired to the right media
for BPExt and TempDB.  Workload modules then load tables into it.

The builder never branches on design names: a :class:`~repro.harness.Design`
is looked up in :data:`~repro.harness.TIER_SPECS` and the resulting
:class:`~repro.tiers.TierPlan` is walked mechanically — pass a
:class:`~repro.tiers.TierSpec` directly to build a topology that has no
enum entry at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..broker import MemoryBroker, MemoryProxy
from ..cluster import Cluster, Server
from ..engine import (
    Database,
    DevicePageFile,
    PageStore,
    RemotePageFile,
    SmbPageFile,
    cost_model_for,
)
from ..engine.page import PAGE_SIZE
from ..net import Network, SmbClient, SmbDirectClient, SmbFileServer
from ..reliability import ReliabilityLayer, ReliabilityPolicy
from ..remotefile import AccessPolicy, RemoteMemoryFilesystem, StagingPool
from ..storage import GB, MB, RamDrive, Raid0Array, SsdDevice
from ..telemetry import MetricsRegistry
from ..telemetry.attach import (
    register_cluster,
    register_pool,
    register_reliability,
    register_remote_file,
)
from ..tiers import Tier, TierPlan, TierSpec, build_stack
from .designs import Design, TIER_SPECS

__all__ = [
    "DbSetup",
    "build_database",
    "prewarm_extension",
    "prewarm_pool",
    "rebuild_extension",
    "warm_extension",
    "warm_pool",
]

#: File ids reserved for engine-internal files.  Extension tiers are
#: spaced ten apart so multi-tier stacks never collide with TempDB.
BPEXT_FILE_ID = 900
TEMPDB_FILE_ID = 901
SEMCACHE_FILE_ID = 950


def _ext_file_id(index: int) -> int:
    return BPEXT_FILE_ID + 10 * index


@dataclass
class DbSetup:
    """Everything a benchmark needs to drive one configuration."""

    design: Optional[Design]
    cluster: Cluster
    db_server: Server
    database: Database
    memory_servers: list[Server] = field(default_factory=list)
    broker: Optional[MemoryBroker] = None
    remote_fs: Optional[RemoteMemoryFilesystem] = None
    network: Optional[Network] = None
    #: Memory-brokering proxies by server name (NDSPI plans only).
    proxies: dict[str, MemoryProxy] = field(default_factory=dict)
    #: Reliability policy layer (NDSPI plans, opt-in): deadlines,
    #: retries, circuit breakers, hedged reads, admission control.
    reliability: Optional[ReliabilityLayer] = None
    #: Every instrument in the setup (devices, NICs, CPUs, buffer pool,
    #: remote files, reliability) adopted into one registry.
    metrics: Optional[MetricsRegistry] = None
    #: The declarative topology this setup was built from, and the
    #: resolved plan (concrete capacities, analytic rule applied).
    spec: Optional[TierSpec] = None
    plan: Optional[TierPlan] = None

    @property
    def sim(self):
        return self.cluster.sim

    def run(self, generator):
        return self.sim.run_until_complete(self.sim.spawn(generator))

    def execute_plan(
        self,
        plan,
        tables: dict,
        schemas: Optional[dict] = None,
        memory_bytes: int = 8 * MB,
        memory_consumers: Optional[int] = None,
        cost_model="auto",
    ):
        """Lower a :mod:`repro.plan` IR tree on this database and run it.

        The single-node counterpart of
        :func:`repro.dist.planner.execute_plan`: the same logical plan a
        distributed setup fragments runs here as one operator tree.  By
        default the lowering consults the §3.3 cost model matching where
        this setup's indexes land (``cost_model="auto"``); pass ``None``
        to force hash joins everywhere (the strategy-comparable shape).
        Returns the engine's :class:`~repro.engine.QueryResult`.
        """
        from ..plan import Aggregate, Join, TopN, count_nodes, lower_single

        if schemas is None:
            from ..workloads import TPCH_SCHEMAS
            schemas = TPCH_SCHEMAS
        if cost_model == "auto":
            cost_model = cost_model_for(self.database)
        op = lower_single(plan, tables, schemas, cost_model)
        if memory_consumers is None:
            memory_consumers = max(1, count_nodes(plan, Join, Aggregate, TopN))
        return self.run(self.database.execute(
            op, requested_memory_bytes=memory_bytes,
            memory_consumers=memory_consumers,
        ))

    def cache_store(self, capacity_pages: int, name: str = "semcache"):
        """``yield from``-able: a page store on the spec's semcache medium.

        Benchmarks that build semantic-cache indexes (Section 3.3) route
        their store placement through the spec instead of hand-picking a
        medium per design.
        """
        medium = self.plan.semcache if self.plan is not None else "ssd"
        if medium == "remote":
            if self.remote_fs is None:
                raise ValueError("spec places the semantic cache remotely "
                                 "but the setup has no remote filesystem")
            spread = len(self.memory_servers) > 1
            file = yield from self.remote_fs.create(
                name, capacity_pages * PAGE_SIZE, spread=spread
            )
            yield from file.open()
            return RemotePageFile(SEMCACHE_FILE_ID, file, capacity_pages=capacity_pages)
        device = self.db_server.devices[medium]
        return DevicePageFile(
            SEMCACHE_FILE_ID, self.db_server, device, capacity_pages=capacity_pages
        )


def build_database(
    design: Design | TierSpec,
    bp_pages: int,
    bpext_pages: int = 0,
    tempdb_pages: int = 4096,
    data_spindles: int = 20,
    n_memory_servers: int = 1,
    analytic: bool = False,
    workspace_bytes: Optional[int] = None,
    local_memory_bonus_pages: int = 0,
    seed: int = 0,
    db_cores: int = 20,
    reliability: ReliabilityPolicy | bool | None = None,
) -> DbSetup:
    """Assemble one design alternative from its tier spec.

    ``design`` is a Table-5 :class:`~repro.harness.Design` (resolved via
    :data:`~repro.harness.TIER_SPECS`) or a bare
    :class:`~repro.tiers.TierSpec` for ad-hoc topologies.
    ``analytic=True`` applies the paper's rule of disabling BPExt for
    sequential workloads on the HDD/HDD+SSD baselines (Section 5.3) —
    the rule itself lives in :meth:`~repro.tiers.TierSpec.resolve`.
    ``local_memory_bonus_pages`` grows the pool for specs with
    ``pool_absorbs_extension`` (*Local Memory*) by the amount other
    designs get as remote memory.  ``reliability`` (NDSPI plans only)
    threads a :class:`~repro.reliability.ReliabilityLayer` through the
    remote path: pass ``True`` for the default policy or a
    :class:`~repro.reliability.ReliabilityPolicy` to tune it.
    """
    if isinstance(design, TierSpec):
        spec, design_key = design, None
    else:
        spec, design_key = TIER_SPECS[design], design
    plan = spec.resolve(
        analytic=analytic, bpext_pages=bpext_pages, tempdb_pages=tempdb_pages
    )

    cluster = Cluster(seed=seed)
    sim = cluster.sim
    network = Network(sim)
    db_server = cluster.add_server("db", cores=db_cores, memory_bytes=384 * GB)
    network.attach(db_server)
    hdd = db_server.attach_device(
        "hdd", Raid0Array(sim, spindles=data_spindles, rng=cluster.rng.stream("hdd"))
    )
    ssd = db_server.attach_device("ssd", SsdDevice(sim))
    local_media = {"hdd": hdd, "ssd": ssd}

    setup = DbSetup(
        design=design_key, cluster=cluster, db_server=db_server,
        database=None, network=network,  # type: ignore[arg-type]
        spec=spec, plan=plan,
    )

    def local_ext_store(index: int, tier) -> DevicePageFile:
        return DevicePageFile(
            _ext_file_id(index), db_server, local_media[tier.medium],
            capacity_pages=tier.capacity_pages,
        )

    def local_tempdb_store() -> DevicePageFile:
        return DevicePageFile(
            TEMPDB_FILE_ID, db_server, local_media[plan.tempdb.medium],
            capacity_pages=tempdb_pages, base_offset=512 * GB,
            chunk_pages=None,  # TempDB is preallocated contiguously
        )

    ext_stores: list[Optional[PageStore]] = []
    tempdb_store: Optional[PageStore] = None

    if not plan.needs_remote:
        # Purely local plans: every tier maps onto an attached device.
        for index, tier in enumerate(plan.extension):
            ext_stores.append(local_ext_store(index, tier))
        tempdb_store = local_tempdb_store()
    else:
        # Remote placements need memory servers.
        remote_bytes_needed = (bpext_pages + tempdb_pages) * PAGE_SIZE + 64 * MB
        per_server = remote_bytes_needed // n_memory_servers + 32 * MB
        for index in range(n_memory_servers):
            server = cluster.add_server(
                f"mem{index}", memory_bytes=max(384 * GB, per_server + 64 * GB)
            )
            network.attach(server)
            setup.memory_servers.append(server)

        if plan.protocol in ("smb", "smbdirect"):
            mem = setup.memory_servers[0]
            drive = mem.attach_device("ramdrive", RamDrive(sim, name=f"{mem.name}.ramdrive"))
            file_server = SmbFileServer(mem, drive)
            client_cls = SmbClient if plan.protocol == "smb" else SmbDirectClient
            for index, tier in enumerate(plan.extension):
                if tier.medium == "remote":
                    ext_stores.append(SmbPageFile(
                        _ext_file_id(index), db_server,
                        client_cls(db_server, file_server),
                        capacity_pages=tier.capacity_pages,
                    ))
                else:
                    ext_stores.append(local_ext_store(index, tier))
            if plan.tempdb.medium == "remote":
                tempdb_store = SmbPageFile(
                    TEMPDB_FILE_ID, db_server, client_cls(db_server, file_server),
                    capacity_pages=tempdb_pages,
                )
            else:
                tempdb_store = local_tempdb_store()
        else:  # ndspi
            broker = MemoryBroker(sim)
            policy = AccessPolicy.SYNC if plan.sync_remote_io else AccessPolicy.ASYNC
            layer = None
            if reliability:
                reliability_policy = (
                    reliability
                    if isinstance(reliability, ReliabilityPolicy)
                    else ReliabilityPolicy()
                )
                layer = ReliabilityLayer(
                    sim, cluster.rng.stream("reliability"), reliability_policy
                )
                setup.reliability = layer
            fs = RemoteMemoryFilesystem(
                db_server, broker, StagingPool(db_server, schedulers=db_cores),
                policy=policy, reliability=layer,
            )
            setup.broker = broker
            setup.remote_fs = fs

            # Local tiers of a mixed stack attach directly; remote tiers
            # are placeholders until the bootstrap opens their files.
            for index, tier in enumerate(plan.extension):
                ext_stores.append(
                    None if tier.medium == "remote" else local_ext_store(index, tier)
                )

            def bootstrap():
                yield from fs.initialize()
                for server in setup.memory_servers:
                    proxy = MemoryProxy(server, broker, mr_bytes=64 * MB)
                    setup.proxies[server.name] = proxy
                    yield from proxy.offer_available(limit_bytes=per_server + 128 * MB)
                spread = n_memory_servers > 1
                for index, tier in enumerate(plan.extension):
                    if tier.medium != "remote":
                        continue
                    file = yield from fs.create(
                        tier.name, tier.capacity_pages * PAGE_SIZE, spread=spread
                    )
                    yield from file.open()
                    ext_stores[index] = RemotePageFile(
                        _ext_file_id(index), file, capacity_pages=tier.capacity_pages
                    )
                if plan.tempdb.medium == "remote":
                    file = yield from fs.create(
                        "tempdb", tempdb_pages * PAGE_SIZE, spread=spread
                    )
                    yield from file.open()
                    return RemotePageFile(
                        TEMPDB_FILE_ID, file, capacity_pages=tempdb_pages
                    )
                return None

            tempdb_store = setup.run(bootstrap())
            if tempdb_store is None:
                tempdb_store = local_tempdb_store()

    extension = build_stack(
        Tier(
            name=tier.name, store=store, medium=tier.medium,
            latency_class=tier.latency_class, promote_on_hit=tier.promote_on_hit,
        )
        for tier, store in zip(plan.extension, ext_stores)
    )

    total_bp_pages = bp_pages
    if spec.pool_absorbs_extension:
        total_bp_pages += local_memory_bonus_pages

    database = Database(
        db_server,
        bp_pages=total_bp_pages,
        data_device=hdd,
        log_device=local_media[plan.wal.medium],
        extension=extension,
        tempdb_store=tempdb_store,
        workspace_bytes=workspace_bytes,
    )
    if setup.reliability is not None:
        database.pool.attach_reliability(setup.reliability)
    setup.database = database

    label = design_key.name.lower() if design_key is not None else spec.name.lower()
    registry = MetricsRegistry(f"dbbench.{label}")
    register_cluster(registry, cluster)
    register_pool(registry, "bp", database.pool)
    if setup.remote_fs is not None:
        for file in setup.remote_fs.files.values():
            register_remote_file(registry, f"rfile.{file.name}", file)
    if setup.reliability is not None:
        register_reliability(registry, "reliability", setup.reliability)
    setup.metrics = registry
    return setup


def warm_extension(pool, max_pages: Optional[int] = None) -> int:
    """Install every base-file page of a BufferPool into its extension.

    Pool-level worker shared by the single-node :class:`DbSetup` path
    and the distributed builders (repro.dist warms each shard's stack).
    Returns pages installed.
    """
    extension = pool.extension
    if extension is None:
        return 0
    installed = 0
    budget = extension.capacity_pages if max_pages is None else min(
        extension.capacity_pages, max_pages
    )
    for store in pool.files.values():
        for _slot, page in store.iter_pages():
            if installed >= budget:
                return installed
            if not extension.adopt(page):
                return installed  # extension full
            installed += 1
    return installed


def warm_pool(pool, max_pages: Optional[int] = None) -> int:
    """Fill a BufferPool with base-file pages; returns pages cached."""
    budget = pool.capacity_pages if max_pages is None else min(pool.capacity_pages, max_pages)
    installed = 0
    for store in pool.files.values():
        for _slot, page in store.iter_pages():
            if installed >= budget - 1:
                return installed
            if pool.adopt(page):
                installed += 1
    return installed


def prewarm_extension(setup: DbSetup, max_pages: Optional[int] = None) -> int:
    """Install every base-file page into the BPExt (steady-state setup).

    Long-running systems reach a state where the extension holds the
    whole working set; benchmarks call this instead of burning wall
    clock replaying hours of warm-up traffic.  Returns pages installed.
    """
    return warm_extension(setup.database.pool, max_pages)


def prewarm_pool(setup: DbSetup, max_pages: Optional[int] = None) -> int:
    """Fill the buffer pool with base-file pages (steady-state setup).

    Used chiefly for the *Local Memory* design, whose pool is large
    enough to hold the database: benchmarks measure steady state, not
    the hours of traffic it takes to get there.  Returns pages cached.
    """
    return warm_pool(setup.database.pool, max_pages)


def rebuild_extension(setup: DbSetup, name: Optional[str] = None):
    """Re-acquire remote memory for the BPExt after a provider crash.

    ``yield from``-able: creates a fresh remote file (new leases, new
    queue pairs), points the extension at it via
    :meth:`~repro.engine.bufferpool.BufferPoolExtension.replace_store`,
    and drops the dead file.  The extension starts empty and re-warms as
    clean pages are evicted into it — the recovery curve of the
    fault-injection experiments.  Returns the new store.
    """
    extension = setup.database.pool.extension
    if extension is None or setup.remote_fs is None:
        raise ValueError("rebuild_extension needs an NDSPI-plan setup")
    # A TierStack rebuilds its remote level; a single extension is its
    # own level.
    levels = getattr(extension, "levels", None)
    level = extension if levels is None else next(
        (lv for lv in levels if isinstance(lv.store, RemotePageFile)), None
    )
    if level is None or not isinstance(level.store, RemotePageFile):
        raise ValueError("the extension has no remote-memory tier")
    old_store = level.store
    old_file = old_store.remote_file
    file_name = name if name is not None else f"{old_file.name}.r{len(setup.remote_fs.files)}"
    pages = level.capacity_pages
    spread = len(setup.memory_servers) > 1
    new_file = yield from setup.remote_fs.create(
        file_name, pages * PAGE_SIZE, spread=spread
    )
    yield from new_file.open()
    new_store = RemotePageFile(old_store.file_id, new_file, capacity_pages=pages)
    level.replace_store(new_store)
    yield from setup.remote_fs.delete(old_file)
    return new_store
