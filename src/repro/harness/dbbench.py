"""Build a full engine instance for one Table-5 design alternative.

``build_database`` assembles the cluster (DB server + memory servers),
the storage devices, the remote-memory machinery for the designs that
need it, and a :class:`~repro.engine.Database` wired to the right media
for BPExt and TempDB.  Workload modules then load tables into it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..broker import MemoryBroker, MemoryProxy
from ..cluster import Cluster, Server
from ..engine import Database, DevicePageFile, RemotePageFile, SmbPageFile
from ..engine.page import PAGE_SIZE
from ..net import Network, SmbClient, SmbDirectClient, SmbFileServer
from ..reliability import ReliabilityLayer, ReliabilityPolicy
from ..remotefile import AccessPolicy, RemoteMemoryFilesystem, StagingPool
from ..storage import GB, MB, RamDrive, Raid0Array, SsdDevice
from ..telemetry import MetricsRegistry
from ..telemetry.attach import (
    register_cluster,
    register_pool,
    register_reliability,
    register_remote_file,
)
from .designs import Design, DESIGNS

__all__ = [
    "DbSetup",
    "build_database",
    "prewarm_extension",
    "prewarm_pool",
    "rebuild_extension",
]

#: File ids reserved for engine-internal files.
BPEXT_FILE_ID = 900
TEMPDB_FILE_ID = 901


@dataclass
class DbSetup:
    """Everything a benchmark needs to drive one configuration."""

    design: Design
    cluster: Cluster
    db_server: Server
    database: Database
    memory_servers: list[Server] = field(default_factory=list)
    broker: Optional[MemoryBroker] = None
    remote_fs: Optional[RemoteMemoryFilesystem] = None
    network: Optional[Network] = None
    #: Memory-brokering proxies by server name (Custom design only).
    proxies: dict[str, MemoryProxy] = field(default_factory=dict)
    #: Reliability policy layer (Custom design, opt-in): deadlines,
    #: retries, circuit breakers, hedged reads, admission control.
    reliability: Optional[ReliabilityLayer] = None
    #: Every instrument in the setup (devices, NICs, CPUs, buffer pool,
    #: remote files, reliability) adopted into one registry.
    metrics: Optional[MetricsRegistry] = None

    @property
    def sim(self):
        return self.cluster.sim

    def run(self, generator):
        return self.sim.run_until_complete(self.sim.spawn(generator))


def build_database(
    design: Design,
    bp_pages: int,
    bpext_pages: int = 0,
    tempdb_pages: int = 4096,
    data_spindles: int = 20,
    n_memory_servers: int = 1,
    analytic: bool = False,
    workspace_bytes: Optional[int] = None,
    local_memory_bonus_pages: int = 0,
    seed: int = 0,
    db_cores: int = 20,
    reliability: ReliabilityPolicy | bool | None = None,
) -> DbSetup:
    """Assemble one design alternative.

    ``analytic=True`` applies the paper's rule of disabling BPExt for
    sequential workloads on the HDD/HDD+SSD baselines (Section 5.3).
    ``local_memory_bonus_pages`` grows the pool for the *Local Memory*
    design by the amount other designs get as remote memory.
    ``reliability`` (Custom design only) threads a
    :class:`~repro.reliability.ReliabilityLayer` through the remote
    path: pass ``True`` for the default policy or a
    :class:`~repro.reliability.ReliabilityPolicy` to tune it.
    """
    config = DESIGNS[design]
    cluster = Cluster(seed=seed)
    sim = cluster.sim
    network = Network(sim)
    db_server = cluster.add_server("db", cores=db_cores, memory_bytes=384 * GB)
    network.attach(db_server)
    hdd = db_server.attach_device(
        "hdd", Raid0Array(sim, spindles=data_spindles, rng=cluster.rng.stream("hdd"))
    )
    ssd = db_server.attach_device("ssd", SsdDevice(sim))

    setup = DbSetup(
        design=design, cluster=cluster, db_server=db_server,
        database=None, network=network,  # type: ignore[arg-type]
    )

    bpext_enabled = config.bpext is not None and bpext_pages > 0
    if analytic and not config.bpext_for_analytics:
        bpext_enabled = False

    bpext_store = None
    tempdb_store = None

    if design in (Design.HDD, Design.LOCAL_MEMORY) or config.protocol is None:
        # Purely local designs.
        if bpext_enabled and config.bpext == "ssd":
            bpext_store = DevicePageFile(
                BPEXT_FILE_ID, db_server, ssd, capacity_pages=bpext_pages
            )
        tempdb_device = ssd if config.tempdb == "ssd" else hdd
        tempdb_store = DevicePageFile(
            TEMPDB_FILE_ID, db_server, tempdb_device,
            capacity_pages=tempdb_pages, base_offset=512 * GB,
            chunk_pages=None,  # TempDB is preallocated contiguously
        )
    else:
        # Remote-memory designs need memory servers.
        remote_bytes_needed = (bpext_pages + tempdb_pages) * PAGE_SIZE + 64 * MB
        per_server = remote_bytes_needed // n_memory_servers + 32 * MB
        for index in range(n_memory_servers):
            server = cluster.add_server(
                f"mem{index}", memory_bytes=max(384 * GB, per_server + 64 * GB)
            )
            network.attach(server)
            setup.memory_servers.append(server)

        if config.protocol in ("smb", "smbdirect"):
            mem = setup.memory_servers[0]
            drive = mem.attach_device("ramdrive", RamDrive(sim, name=f"{mem.name}.ramdrive"))
            file_server = SmbFileServer(mem, drive)
            client_cls = SmbClient if config.protocol == "smb" else SmbDirectClient
            if bpext_enabled:
                bpext_store = SmbPageFile(
                    BPEXT_FILE_ID, db_server, client_cls(db_server, file_server),
                    capacity_pages=bpext_pages,
                )
            tempdb_store = SmbPageFile(
                TEMPDB_FILE_ID, db_server, client_cls(db_server, file_server),
                capacity_pages=tempdb_pages,
            )
        else:  # ndspi / Custom
            broker = MemoryBroker(sim)
            policy = AccessPolicy.SYNC if config.sync_remote_io else AccessPolicy.ASYNC
            layer = None
            if reliability:
                reliability_policy = (
                    reliability
                    if isinstance(reliability, ReliabilityPolicy)
                    else ReliabilityPolicy()
                )
                layer = ReliabilityLayer(
                    sim, cluster.rng.stream("reliability"), reliability_policy
                )
                setup.reliability = layer
            fs = RemoteMemoryFilesystem(
                db_server, broker, StagingPool(db_server, schedulers=db_cores),
                policy=policy, reliability=layer,
            )
            setup.broker = broker
            setup.remote_fs = fs

            def bootstrap():
                yield from fs.initialize()
                for server in setup.memory_servers:
                    proxy = MemoryProxy(server, broker, mr_bytes=64 * MB)
                    setup.proxies[server.name] = proxy
                    yield from proxy.offer_available(limit_bytes=per_server + 128 * MB)
                stores = {}
                spread = n_memory_servers > 1
                if bpext_enabled:
                    file = yield from fs.create(
                        "bpext", bpext_pages * PAGE_SIZE, spread=spread
                    )
                    yield from file.open()
                    stores["bpext"] = RemotePageFile(BPEXT_FILE_ID, file, capacity_pages=bpext_pages)
                file = yield from fs.create(
                    "tempdb", tempdb_pages * PAGE_SIZE, spread=spread
                )
                yield from file.open()
                stores["tempdb"] = RemotePageFile(TEMPDB_FILE_ID, file, capacity_pages=tempdb_pages)
                return stores

            stores = setup.run(bootstrap())
            bpext_store = stores.get("bpext")
            tempdb_store = stores["tempdb"]

    total_bp_pages = bp_pages
    if design is Design.LOCAL_MEMORY:
        total_bp_pages += local_memory_bonus_pages

    database = Database(
        db_server,
        bp_pages=total_bp_pages,
        data_device=hdd,
        log_device=hdd,
        bpext_store=bpext_store,
        tempdb_store=tempdb_store,
        workspace_bytes=workspace_bytes,
    )
    if setup.reliability is not None:
        database.pool.attach_reliability(setup.reliability)
    setup.database = database

    registry = MetricsRegistry(f"dbbench.{design.name.lower()}")
    register_cluster(registry, cluster)
    register_pool(registry, "bp", database.pool)
    if setup.remote_fs is not None:
        for file in setup.remote_fs.files.values():
            register_remote_file(registry, f"rfile.{file.name}", file)
    if setup.reliability is not None:
        register_reliability(registry, "reliability", setup.reliability)
    setup.metrics = registry
    return setup


def prewarm_extension(setup: DbSetup, max_pages: Optional[int] = None) -> int:
    """Install every base-file page into the BPExt (steady-state setup).

    Long-running systems reach a state where the extension holds the
    whole working set; benchmarks call this instead of burning wall
    clock replaying hours of warm-up traffic.  Returns pages installed.
    """
    pool = setup.database.pool
    extension = pool.extension
    if extension is None:
        return 0
    installed = 0
    budget = extension.capacity_pages if max_pages is None else min(
        extension.capacity_pages, max_pages
    )
    from ..engine.files import DevicePageFile, RemotePageFile, SmbPageFile
    from ..engine.page import PAGE_SIZE

    ext_store = extension.store
    for store in pool.files.values():
        pages = getattr(store, "_pages", None)
        if pages is None:
            continue
        for page_no, page in pages.items():
            if installed >= budget or not extension._free:
                return installed
            slot = extension._free.pop()
            extension._slots[(store.file_id, page_no)] = slot
            snapshot = page.copy()  # keeps the original page_id
            if isinstance(ext_store, RemotePageFile):
                segments = ext_store.remote_file._locate(slot * PAGE_SIZE, PAGE_SIZE)
                lease, mr_offset, length = segments[0]
                lease.region.put_object(mr_offset, length, snapshot)
                ext_store._present.add(slot)
            else:  # DevicePageFile / SmbPageFile keep a slot-keyed dict
                ext_store._pages[slot] = snapshot
            installed += 1
    return installed


def prewarm_pool(setup: DbSetup, max_pages: Optional[int] = None) -> int:
    """Fill the buffer pool with base-file pages (steady-state setup).

    Used chiefly for the *Local Memory* design, whose pool is large
    enough to hold the database: benchmarks measure steady state, not
    the hours of traffic it takes to get there.  Returns pages cached.
    """
    pool = setup.database.pool
    budget = pool.capacity_pages if max_pages is None else min(pool.capacity_pages, max_pages)
    from ..engine.bufferpool import Frame

    installed = 0
    for store in pool.files.values():
        pages = getattr(store, "_pages", None)
        if pages is None:
            continue
        for _page_no, page in pages.items():
            if installed >= budget - 1:
                return installed
            page_id = page.page_id
            if page_id in pool._frames:
                continue
            pool._frames[page_id] = Frame(page.copy())
            installed += 1
    return installed


def rebuild_extension(setup: DbSetup, name: Optional[str] = None):
    """Re-acquire remote memory for the BPExt after a provider crash.

    ``yield from``-able: creates a fresh remote file (new leases, new
    queue pairs), points the extension at it via
    :meth:`~repro.engine.bufferpool.BufferPoolExtension.replace_store`,
    and drops the dead file.  The extension starts empty and re-warms as
    clean pages are evicted into it — the recovery curve of the
    fault-injection experiments.  Returns the new store.
    """
    extension = setup.database.pool.extension
    if extension is None or setup.remote_fs is None:
        raise ValueError("rebuild_extension needs a Custom-design setup")
    old_store = extension.store
    if not isinstance(old_store, RemotePageFile):
        raise ValueError("the extension store is not remote-memory backed")
    old_file = old_store.remote_file
    file_name = name if name is not None else f"{old_file.name}.r{len(setup.remote_fs.files)}"
    pages = extension.capacity_pages
    spread = len(setup.memory_servers) > 1
    new_file = yield from setup.remote_fs.create(
        file_name, pages * PAGE_SIZE, spread=spread
    )
    yield from new_file.open()
    new_store = RemotePageFile(old_store.file_id, new_file, capacity_pages=pages)
    extension.replace_store(new_store)
    yield from setup.remote_fs.delete(old_file)
    return new_store
