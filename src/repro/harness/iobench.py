"""Builders for the I/O micro-benchmark targets (Figures 3-6).

``build_io_target`` assembles the simulated cluster for one design
alternative and returns a uniform target with ``read(offset, size)`` /
``write(offset, size)`` generator methods, so :func:`repro.workloads.sqlio.
run_sqlio` can drive any of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..broker import MemoryBroker, MemoryProxy
from ..cluster import Cluster, Server
from ..net import Network, SmbClient, SmbDirectClient, SmbFileServer
from ..remotefile import AccessPolicy, RemoteFile, RemoteMemoryFilesystem, StagingPool
from ..storage import GB, MB, BlockDevice, RamDrive, Raid0Array, SsdDevice
from ..telemetry import MetricsRegistry
from ..telemetry.attach import register_cluster, register_remote_file

__all__ = ["IoTarget", "build_io_target", "build_custom_multi", "IO_DESIGNS"]

#: Designs understood by :func:`build_io_target` (Figure 3/4 x-axis).
IO_DESIGNS = (
    "HDD(4)",
    "HDD(8)",
    "HDD(20)",
    "SSD",
    "SMB+RamDrive",
    "SMBDirect+RamDrive",
    "Custom",
)

#: Address span the micro-benchmark sweeps (matches the paper's setup
#: where the RamDrive/remote file far exceeds any cache).
DEFAULT_SPAN = 64 * GB


@dataclass
class IoTarget:
    """A uniform read/write target plus the cluster behind it."""

    name: str
    cluster: Cluster
    span_bytes: int
    _reader: object
    db_server: Server | None = None
    memory_servers: tuple[Server, ...] = ()
    #: Every instrument behind the target (devices, NICs, CPUs, remote
    #: file) adopted into one registry; populated by the builders.
    metrics: MetricsRegistry | None = None

    def read(self, offset: int, size: int):
        yield from self._reader.read(offset, size)

    def write(self, offset: int, size: int):
        yield from self._reader.write(offset, size)


class _RemoteFileAdapter:
    """Presents a RemoteFile as a (offset, size) target (timing-only)."""

    def __init__(self, file: RemoteFile):
        self.file = file

    def read(self, offset: int, size: int):
        yield from self.file.read_nodata(offset, size)

    def write(self, offset: int, size: int):
        yield from self.file.write_nodata(offset, size)


class _DeviceAdapter:
    """Local block device target."""

    def __init__(self, device: BlockDevice):
        self.device = device

    def read(self, offset: int, size: int):
        yield from self.device.read(offset, size)

    def write(self, offset: int, size: int):
        yield from self.device.write(offset, size)


def _bind_metrics(target: IoTarget) -> IoTarget:
    """Adopt every instrument behind ``target`` into one registry."""
    registry = MetricsRegistry(target.name)
    register_cluster(registry, target.cluster)
    file = getattr(target._reader, "file", None)
    if file is not None:
        register_remote_file(registry, f"rfile.{file.name}", file)
    target.metrics = registry
    return target


def _base_cluster(seed: int = 0) -> tuple[Cluster, Network, Server]:
    cluster = Cluster(seed=seed)
    network = Network(cluster.sim)
    db = cluster.add_server("db")
    network.attach(db)
    return cluster, network, db


def build_io_target(design: str, span_bytes: int = DEFAULT_SPAN, seed: int = 0) -> IoTarget:
    """Build the cluster + target for one Figure-3/4 design alternative."""
    cluster, network, db = _base_cluster(seed)
    sim = cluster.sim

    if design.startswith("HDD("):
        spindles = int(design[4:-1])
        device = Raid0Array(sim, spindles=spindles, name=design,
                            rng=cluster.rng.stream("hdd"))
        db.attach_device("data", device)
        return _bind_metrics(
            IoTarget(design, cluster, span_bytes, _DeviceAdapter(device), db_server=db)
        )

    if design == "SSD":
        device = SsdDevice(sim, name="ssd")
        db.attach_device("ssd", device)
        return _bind_metrics(
            IoTarget(design, cluster, span_bytes, _DeviceAdapter(device), db_server=db)
        )

    mem = cluster.add_server("mem0", memory_bytes=max(384 * GB, span_bytes + 64 * GB))
    network.attach(mem)

    if design in ("SMB+RamDrive", "SMBDirect+RamDrive"):
        drive = RamDrive(sim, name="mem0.ramdrive")
        mem.attach_device("ramdrive", drive)
        file_server = SmbFileServer(mem, drive)
        if design == "SMB+RamDrive":
            client = SmbClient(db, file_server)
        else:
            client = SmbDirectClient(db, file_server)
        return _bind_metrics(IoTarget(
            design, cluster, span_bytes, client, db_server=db, memory_servers=(mem,)
        ))

    if design == "Custom":
        target = _build_custom(cluster, db, [mem], span_bytes)
        return _bind_metrics(IoTarget(
            design, cluster, span_bytes, target, db_server=db, memory_servers=(mem,)
        ))

    raise ValueError(f"unknown design {design!r}; expected one of {IO_DESIGNS}")


def _build_custom(
    cluster: Cluster,
    db: Server,
    memory_servers: list[Server],
    span_bytes: int,
    policy: AccessPolicy = AccessPolicy.SYNC,
    mr_bytes: int = 256 * MB,
) -> _RemoteFileAdapter:
    sim = cluster.sim
    broker = MemoryBroker(sim)
    fs = RemoteMemoryFilesystem(db, broker, StagingPool(db), policy=policy)
    per_server = -(-span_bytes // len(memory_servers))  # ceil division

    def setup():
        yield from fs.initialize()
        for server in memory_servers:
            proxy = MemoryProxy(server, broker, mr_bytes=mr_bytes)
            yield from proxy.offer_available(limit_bytes=per_server + mr_bytes)
        file = yield from fs.create(
            "iobench", span_bytes,
            providers=[s.name for s in memory_servers],
            spread=len(memory_servers) > 1,
        )
        yield from file.open()
        return file

    file = sim.run_until_complete(sim.spawn(setup()))
    return _RemoteFileAdapter(file)


def build_custom_multi(
    n_memory_servers: int,
    span_bytes: int = DEFAULT_SPAN,
    seed: int = 0,
    policy: AccessPolicy = AccessPolicy.SYNC,
) -> IoTarget:
    """Custom design with remote memory pooled from N servers (Figure 5)."""
    cluster, network, db = _base_cluster(seed)
    memory_servers = []
    for index in range(n_memory_servers):
        server = cluster.add_server(
            f"mem{index}", memory_bytes=max(384 * GB, span_bytes + 64 * GB)
        )
        network.attach(server)
        memory_servers.append(server)
    target = _build_custom(cluster, db, memory_servers, span_bytes, policy=policy)
    return _bind_metrics(IoTarget(
        f"Custom x{n_memory_servers}", cluster, span_bytes, target,
        db_server=db, memory_servers=tuple(memory_servers),
    ))


def build_multi_db(
    n_db_servers: int,
    per_db_span: int = 8 * GB,
    seed: int = 0,
    policy: AccessPolicy = AccessPolicy.SYNC,
) -> list[IoTarget]:
    """N database servers sharing one memory server (Figure 6/25 setup).

    Each DB server gets its own staging pool and remote file of
    ``per_db_span`` bytes, all leased from the single provider.
    """
    cluster = Cluster(seed=seed)
    network = Network(cluster.sim)
    mem = cluster.add_server(
        "mem0", memory_bytes=max(384 * GB, n_db_servers * per_db_span + 64 * GB)
    )
    network.attach(mem)
    broker = MemoryBroker(cluster.sim)
    sim = cluster.sim

    def offer():
        proxy = MemoryProxy(mem, broker, mr_bytes=256 * MB)
        yield from proxy.offer_available(
            limit_bytes=n_db_servers * per_db_span + 512 * MB
        )

    sim.run_until_complete(sim.spawn(offer()))
    targets = []
    for index in range(n_db_servers):
        db = cluster.add_server(f"db{index}")
        network.attach(db)
        fs = RemoteMemoryFilesystem(db, broker, StagingPool(db), policy=policy)

        def setup(fs=fs, index=index):
            yield from fs.initialize()
            file = yield from fs.create(f"iobench{index}", per_db_span)
            yield from file.open()
            return file

        file = sim.run_until_complete(sim.spawn(setup()))
        targets.append(
            IoTarget(
                f"db{index}", cluster, per_db_span, _RemoteFileAdapter(file),
                db_server=db, memory_servers=(mem,),
            )
        )
    # Bind after the loop so every registry sees the full cluster.
    return [_bind_metrics(target) for target in targets]
