"""The design alternatives of Table 5.

=====================  ==========  ============  ============  =========
Design                 Data files  TempDB        BPExt         Protocol
=====================  ==========  ============  ============  =========
HDD                    HDD         HDD           (disabled)    —
HDD+SSD                HDD         SSD           SSD [OLTP]    —
SMB+RamDrive           HDD         remote mem    remote mem    SMB (TCP)
SMBDirect+RamDrive     HDD         remote mem    remote mem    SMB Direct
Custom                 HDD         remote mem    remote mem    NDSPI
Local Memory           HDD         SSD           (not needed)  —
=====================  ==========  ============  ============  =========

For analytic workloads the paper disables BPExt on the HDD/HDD+SSD
baselines because redirecting sequential scans to the SSD's random path
is a loss (Section 5.3); :attr:`DesignConfig.bpext_for_analytics`
captures that rule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..tiers import TierDef, TierSpec, spec_for

__all__ = ["Design", "DesignConfig", "DESIGNS", "REMOTE_DESIGNS", "TIER_SPECS"]


class Design(enum.Enum):
    HDD = "HDD"
    HDD_SSD = "HDD+SSD"
    SMB_RAMDRIVE = "SMB+RamDrive"
    SMBDIRECT_RAMDRIVE = "SMBDirect+RamDrive"
    CUSTOM = "Custom"
    LOCAL_MEMORY = "Local Memory"
    #: Section-8 future work: DRAM pool over an SSD tier over remote
    #: memory.  Not a Table-5 row — it exists purely as a TierSpec.
    THREE_TIER = "ThreeTier"


@dataclass(frozen=True)
class DesignConfig:
    design: Design
    #: Medium for TempDB: "hdd", "ssd" or "remote".
    tempdb: str
    #: Medium for the buffer-pool extension (None = disabled).
    bpext: str | None
    #: Transport for remote memory: None, "smb", "smbdirect", "ndspi".
    protocol: str | None
    #: Whether BPExt stays enabled for sequential/analytic workloads.
    bpext_for_analytics: bool
    #: Whether remote I/O is waited on synchronously (spin).
    sync_remote_io: bool


DESIGNS: dict[Design, DesignConfig] = {
    Design.HDD: DesignConfig(
        Design.HDD, tempdb="hdd", bpext=None, protocol=None,
        bpext_for_analytics=False, sync_remote_io=False,
    ),
    Design.HDD_SSD: DesignConfig(
        Design.HDD_SSD, tempdb="ssd", bpext="ssd", protocol=None,
        bpext_for_analytics=False, sync_remote_io=False,
    ),
    Design.SMB_RAMDRIVE: DesignConfig(
        Design.SMB_RAMDRIVE, tempdb="remote", bpext="remote", protocol="smb",
        bpext_for_analytics=True, sync_remote_io=False,
    ),
    Design.SMBDIRECT_RAMDRIVE: DesignConfig(
        Design.SMBDIRECT_RAMDRIVE, tempdb="remote", bpext="remote",
        protocol="smbdirect", bpext_for_analytics=True, sync_remote_io=False,
    ),
    Design.CUSTOM: DesignConfig(
        Design.CUSTOM, tempdb="remote", bpext="remote", protocol="ndspi",
        bpext_for_analytics=True, sync_remote_io=True,
    ),
    Design.LOCAL_MEMORY: DesignConfig(
        Design.LOCAL_MEMORY, tempdb="ssd", bpext=None, protocol=None,
        bpext_for_analytics=False, sync_remote_io=False,
    ),
}

#: Designs that place TempDB/BPExt in remote memory.
REMOTE_DESIGNS = (Design.SMB_RAMDRIVE, Design.SMBDIRECT_RAMDRIVE, Design.CUSTOM)

#: Every design compiled to the declarative tier grammar.  The Table-5
#: rows compile mechanically from their :class:`DesignConfig`; the
#: builder consumes only these specs, never the configs.
TIER_SPECS: dict[Design, TierSpec] = {
    design: spec_for(
        config, pool_absorbs_extension=design is Design.LOCAL_MEMORY
    )
    for design, config in DESIGNS.items()
}

#: The three-tier hierarchy is data, not a code path: a hot SSD tier
#: absorbs pool evictions, overflow demotes to a larger remote tier,
#: and remote hits promote back up.  TempDB rides the remote memory.
TIER_SPECS[Design.THREE_TIER] = TierSpec(
    name="ThreeTier",
    extension=(
        TierDef(medium="ssd", share=1.0),
        TierDef(medium="remote", share=2.0, promote_on_hit=True),
    ),
    tempdb="remote",
    wal="hdd",
    semcache="remote",
    protocol="ndspi",
    sync_remote_io=True,
    extension_for_analytics=True,
)
