"""Cluster and server model.

A :class:`Cluster` is the simulated equivalent of the paper's ten-server
Infiniband testbed (Table 3): every :class:`Server` has a CPU (20 cores /
40 logical processors), local memory, an RDMA-capable NIC port, and
whatever block devices the experiment attaches (RAID-0 HDD array, SSD,
RamDrive).

Servers carry an ``alive`` flag that NICs and devices consult; the
fault-injection subsystem (:mod:`repro.faults`) drives it through the
public :meth:`Server.fail` / :meth:`Server.restore` hooks.
"""

from __future__ import annotations

from dataclasses import dataclass

from .sim import Cpu, RngRegistry, Simulator
from .storage import GB, BlockDevice

__all__ = ["Server", "Cluster", "ServerSpec"]


@dataclass
class ServerSpec:
    """Hardware profile of one server (defaults mirror Table 3)."""

    cores: int = 20
    memory_bytes: int = 384 * GB
    name: str = "server"


class Server:
    """One machine: CPU, memory accounting, NIC port, attached devices."""

    def __init__(self, sim: Simulator, spec: ServerSpec):
        self.sim = sim
        self.name = spec.name
        self.spec = spec
        self.cpu = Cpu(sim, cores=spec.cores, name=spec.name)
        self.memory_bytes = spec.memory_bytes
        self.memory_committed = 0
        self.devices: dict[str, BlockDevice] = {}
        # Network endpoints are attached by Network.attach().
        self.nic = None  # type: ignore[assignment]
        self.tcp = None  # type: ignore[assignment]
        #: Fault state: devices and NICs refuse service while False.
        self.alive = True

    # -- fault hooks -------------------------------------------------------

    def fail(self) -> None:
        """Crash the server: NIC goes dark, in-flight transfers abort.

        The server's memory contents are considered lost; higher layers
        (broker, proxies, buffer-pool extension) learn about the crash
        through their own public ``on_fault``-style hooks, driven by the
        fault-injection subsystem.
        """
        if not self.alive:
            return
        self.alive = False
        if self.nic is not None:
            self.nic.fail()

    def restore(self) -> None:
        """Bring the server back (empty memory, NIC reconnected)."""
        if self.alive:
            return
        self.alive = True
        if self.nic is not None:
            self.nic.restore()

    # -- memory accounting ------------------------------------------------

    @property
    def memory_available(self) -> int:
        return self.memory_bytes - self.memory_committed

    def commit_memory(self, amount: int) -> None:
        """Commit memory to a local process; raises if overcommitted."""
        if amount > self.memory_available:
            raise MemoryError(
                f"{self.name}: cannot commit {amount} bytes, "
                f"only {self.memory_available} available"
            )
        self.memory_committed += amount

    def release_memory(self, amount: int) -> None:
        self.memory_committed -= amount
        if self.memory_committed < 0:
            raise ValueError(f"{self.name}: memory over-released")

    # -- devices -----------------------------------------------------------

    def attach_device(self, key: str, device: BlockDevice) -> BlockDevice:
        if key in self.devices:
            raise ValueError(f"{self.name}: device {key!r} already attached")
        self.devices[key] = device
        device.owner = self
        return device

    def device(self, key: str) -> BlockDevice:
        return self.devices[key]

    def __repr__(self) -> str:
        return f"<Server {self.name} cores={self.spec.cores}>"


class Cluster:
    """A set of servers sharing one simulator, RNG registry and network."""

    def __init__(self, sim: Simulator | None = None, seed: int = 0):
        self.sim = sim if sim is not None else Simulator()
        self.rng = RngRegistry(seed)
        self.servers: dict[str, Server] = {}

    def add_server(self, name: str, cores: int = 20, memory_bytes: int = 384 * GB) -> Server:
        if name in self.servers:
            raise ValueError(f"server {name!r} already exists")
        server = Server(self.sim, ServerSpec(cores=cores, memory_bytes=memory_bytes, name=name))
        self.servers[name] = server
        return server

    def server(self, name: str) -> Server:
        return self.servers[name]

    def __iter__(self):
        return iter(self.servers.values())

    def __len__(self) -> int:
        return len(self.servers)
