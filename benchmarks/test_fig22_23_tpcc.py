"""Figures 22/23: TPC-C with the default and read-mostly mixes.

Default mix: the working set is small and shifting, so *no* design —
not even Local Memory — helps much.  Read-mostly mix (90 % StockLevel):
the working set spans the order-line history, and designs with more
memory (local or remote) win.  Latency shows the paper's inversion:
HDD+SSD has slightly *lower* latency in the read-mostly mix because its
throughput is lower (less contention at equal client count).
"""

from repro.harness import Design, build_database, format_table, prewarm_extension
from repro.workloads import (
    DEFAULT_MIX,
    READ_MOSTLY_MIX,
    TpccConfig,
    build_tpcc_database,
    run_tpcc,
)

BP, EXT = 830, 1650
DESIGNS = [
    Design.HDD, Design.HDD_SSD, Design.SMB_RAMDRIVE,
    Design.SMBDIRECT_RAMDRIVE, Design.CUSTOM, Design.LOCAL_MEMORY,
]


def run_figures_22_23():
    results = {}
    rows = []
    # The default mix runs at 100 clients (saturation, where the paper's
    # "nothing helps much" claim lives).  The read-mostly mix runs at 50:
    # past that, every design saturates the shared HDD data array and the
    # extension medium stops mattering — 50 clients is where the figure's
    # SSD-vs-remote separation is actually measurable.
    for mix_name, mix, workers in (
        ("Default", DEFAULT_MIX, 100), ("Read-Mostly", READ_MOSTLY_MIX, 50)
    ):
        for design in DESIGNS:
            bonus = EXT if design is Design.LOCAL_MEMORY else 0
            setup = build_database(
                design, bp_pages=BP, bpext_pages=EXT, tempdb_pages=1024,
                analytic=False, local_memory_bonus_pages=bonus,
            )
            db = setup.database
            state = build_tpcc_database(db)
            prewarm_extension(setup)
            warm = TpccConfig(mix=dict(mix), workers=workers,
                              transactions_per_worker=10, seed=7)
            run_tpcc(db, state, warm)
            config = TpccConfig(mix=dict(mix), workers=workers,
                                transactions_per_worker=20, seed=8)
            report = run_tpcc(db, state, config)
            results[(mix_name, design)] = (
                report.throughput_tps, report.latency.mean / 1000.0
            )
            rows.append([mix_name, design.value, report.throughput_tps,
                         report.latency.mean / 1000.0])
    print()
    print(format_table(
        ["mix", "design", "transactions/sec", "latency ms"], rows,
        title="Figures 22/23: TPC-C throughput and latency",
    ))
    return results


def test_fig22_23_tpcc(once):
    results = once(run_figures_22_23)

    def tps(mix, design):
        return results[(mix, design)][0]

    def latency(mix, design):
        return results[(mix, design)][1]

    # Default mix: remote memory does NOT help — the remote designs sit
    # within ~30% of HDD+SSD (paper Figure 22 left); even doubling the
    # memory locally moves it by far less than the read-mostly gains.
    base = tps("Default", Design.HDD_SSD)
    for design in (Design.CUSTOM, Design.SMBDIRECT_RAMDRIVE):
        assert abs(tps("Default", design) - base) / base < 0.3, design
    assert tps("Default", Design.LOCAL_MEMORY) < 1.6 * base
    # Read-mostly: more memory helps, local or remote — every
    # memory-rich design finishes ahead of HDD+SSD, and far ahead of
    # plain HDD.
    assert tps("Read-Mostly", Design.CUSTOM) > 1.03 * tps("Read-Mostly", Design.HDD_SSD)
    assert tps("Read-Mostly", Design.SMB_RAMDRIVE) > tps("Read-Mostly", Design.HDD_SSD)
    assert tps("Read-Mostly", Design.LOCAL_MEMORY) > 1.2 * tps("Read-Mostly", Design.HDD_SSD)
    assert tps("Read-Mostly", Design.CUSTOM) > 2.0 * tps("Read-Mostly", Design.HDD)
    # The paper's latency observation: despite reading from media ~300x
    # slower, HDD+SSD's latency is within ~1.6x of the remote designs at
    # equal client count (its lower throughput means less contention).
    assert latency("Read-Mostly", Design.HDD_SSD) < 1.6 * latency(
        "Read-Mostly", Design.CUSTOM
    )
