"""Figure 4: I/O micro-benchmark latency (SQLIO).

Paper values (µs): HDD(4) 21000/6000, HDD(8) 13000/2000, HDD(20)
8000/1000, SSD 624/6288, SMB+RamDrive 236/723, SMBDirect+RamDrive
109/488, Custom 36/487.
"""

from repro.harness import IO_DESIGNS, build_io_target, format_table
from repro.workloads import RANDOM_8K, SEQUENTIAL_512K, run_sqlio


def run_figure4():
    results = {}
    rows = []
    for design in IO_DESIGNS:
        random_target = build_io_target(design)
        random = run_sqlio(
            random_target.cluster.sim, random_target, RANDOM_8K,
            span_bytes=random_target.span_bytes,
            rng=random_target.cluster.rng.stream("sqlio"),
        )
        seq_target = build_io_target(design)
        sequential = run_sqlio(
            seq_target.cluster.sim, seq_target, SEQUENTIAL_512K,
            span_bytes=seq_target.span_bytes,
            rng=seq_target.cluster.rng.stream("sqlio"),
        )
        results[design] = (random.mean_latency_us, sequential.mean_latency_us)
        rows.append([design, random.mean_latency_us, sequential.mean_latency_us])
    print()
    print(format_table(
        ["design", "8K random us", "512K sequential us"], rows,
        title="Figure 4: I/O micro-benchmark latency",
    ))
    return results


def test_fig04_io_latency(once):
    results = once(run_figure4)
    rand = {d: r for d, (r, _s) in results.items()}
    # Custom ~36 us class; within a factor of 2 of the paper's number.
    assert 18 < rand["Custom"] < 80
    # Latency ordering mirrors the throughput ordering.
    assert rand["Custom"] < rand["SMBDirect+RamDrive"] < rand["SMB+RamDrive"]
    assert rand["SMB+RamDrive"] < rand["SSD"] < rand["HDD(20)"]
    # Remote-memory random latency is an order of magnitude under SSD.
    assert rand["SSD"] / rand["Custom"] > 8
    # HDD latency improves with spindle count (queueing relief).
    assert rand["HDD(4)"] > rand["HDD(8)"] > rand["HDD(20)"]
