"""Figure 15(b): INLJ vs hash join crossover moves with the index medium.

Adapted TPC-H Q12: join a varying fraction of lineitem against orders
through a non-clustered index that lives either on the SSD or pinned in
remote memory.  At low selectivity the INLJ wins; at high selectivity
the hash join wins; the crossover happens at a much higher selectivity
when the index is memory-resident — which is why the optimizer's cost
model must know where the structure lives (Section 3.3).
"""

from repro.engine import (
    BTree,
    BufferPool,
    CostModel,
    DevicePageFile,
    Medium,
    RemotePageFile,
    crossover_selectivity,
)
from repro.engine.page import PAGE_SIZE
from repro.harness import Design, build_database, format_table
from repro.workloads import build_tpch_database
from repro.workloads.tpch import TpchScale

SELECTIVITIES = (0.002, 0.01, 0.05, 0.15, 0.4, 0.8)
SCALE = TpchScale()


def _build_index(db, setup, orders, medium: str):
    """Covering NC index on orders(orderkey), on SSD or remote memory."""
    entries = sorted(
        (row[0], row[3]) for row in db._all_leaf_rows_flat(orders)
    ) if hasattr(db, "_all_leaf_rows_flat") else sorted(
        (row[0], row[3])
        for page_rows in db._all_leaf_rows(orders)
        for row in page_rows
    )
    # A small dedicated pool so leaf reads really hit the medium (the
    # cache is pinned *outside* the buffer pool, Section 3.3).
    pool = BufferPool(db.server, capacity_pages=16)
    if medium == "ssd":
        store = DevicePageFile(8000, db.server, db.server.device("ssd"),
                               capacity_pages=4096)
    else:
        pages_needed = len(entries) // 300 + 64
        remote_file = setup.run(setup.remote_fs.create(
            f"ncidx.{medium}", pages_needed * PAGE_SIZE * 2
        ))
        setup.run(remote_file.open())
        store = RemotePageFile(8001, remote_file)
    pool.register_file(store)
    tree = BTree("orders.nc", pool, store, key_fn=lambda e: e[0], leaf_capacity=40)
    if medium == "ssd":
        tree.bulk_build(entries)
    else:
        # Remote store: build via a preloadable staging store, then copy.
        staging = DevicePageFile(8002, db.server, db.server.device("ssd"))
        staging_pool = BufferPool(db.server, capacity_pages=16)
        staging_pool.register_file(staging)
        tree = BTree("orders.nc", staging_pool, staging,
                     key_fn=lambda e: e[0], leaf_capacity=40)
        tree.bulk_build(entries)
        # Move the pages into remote memory (untimed steady-state setup).
        store.preload([page for _slot, page in staging.iter_pages()])
        tree.pool = pool
        tree.store = store
        pool.register_file(store) if store.file_id not in pool.files else None
    return tree


def run_figure15b():
    setup = build_database(
        Design.CUSTOM, bp_pages=2048, bpext_pages=4096, tempdb_pages=49152,
        analytic=True,
    )
    db = setup.database
    tables = build_tpch_database(db, scale=SCALE)
    orders = tables["orders"]
    lineitem = tables["lineitem"]
    sim = db.sim
    results = {}
    rows = []

    def warm_scan():
        yield from orders.clustered.range_scan(-1, 10**9)
        yield from lineitem.clustered.range_scan(0, SCALE.lineitems)

    sim.run_until_complete(sim.spawn(warm_scan()))
    for medium in ("ssd", "remote"):
        index = _build_index(db, setup, orders, medium)
        for fraction in SELECTIVITIES:
            # A uniform predicate on lineitem selects this fraction of
            # orderkeys, scattered over the whole orders key space.
            step = max(1, int(1.0 / fraction))
            orderkeys = list(range(0, SCALE.orders, step))

            def inlj_run(orderkeys=orderkeys):
                for key in orderkeys:
                    yield from index.search(key)
                yield from db.server.cpu.compute(len(orderkeys) * 0.5)

            def hash_run(orderkeys=orderkeys):
                build = yield from orders.clustered.range_scan(-1, 10**9)
                table = {row[0]: row for row in build}
                yield from db.server.cpu.compute(
                    len(build) * 0.25 + len(orderkeys) * 0.25
                )
                _joined = [table.get(key) for key in orderkeys]

            start = sim.now
            sim.run_until_complete(sim.spawn(inlj_run()))
            inlj_us = sim.now - start
            start = sim.now
            sim.run_until_complete(sim.spawn(hash_run()))
            hash_us = sim.now - start
            results[(medium, fraction)] = (inlj_us, hash_us)
            rows.append([medium, fraction, inlj_us / 1000, hash_us / 1000,
                         "INLJ" if inlj_us < hash_us else "HASH"])
    print()
    print(format_table(
        ["index medium", "selectivity", "INLJ ms", "HashJoin ms", "winner"],
        rows, title="Figure 15b: INLJ vs HJ crossover by index medium",
    ))
    # The optimizer cost model predicts the same movement.
    ssd_cross = crossover_selectivity(
        CostModel(index_medium=Medium.SSD), orders, SCALE.lineitems
    )
    remote_cross = crossover_selectivity(
        CostModel(index_medium=Medium.REMOTE_MEMORY), orders, SCALE.lineitems
    )
    print(f"\ncost-model crossover: SSD={ssd_cross:.4f}  remote={remote_cross:.4f}")
    return results, ssd_cross, remote_cross


def _measured_crossover(results, medium):
    for fraction in SELECTIVITIES:
        inlj, hashed = results[(medium, fraction)]
        if hashed < inlj:
            return fraction
    return 1.0


def test_fig15b_inlj_crossover(once):
    results, ssd_cross, remote_cross = once(run_figure15b)
    # With the index in remote memory, INLJ wins at low selectivity...
    assert results[("remote", SELECTIVITIES[0])][0] < results[("remote", SELECTIVITIES[0])][1]
    # ... while at high selectivity the hash join wins on both media.
    assert results[("remote", SELECTIVITIES[-1])][0] > results[("remote", SELECTIVITIES[-1])][1]
    # The measured crossover moves right with a memory-resident index.
    assert _measured_crossover(results, "remote") > _measured_crossover(results, "ssd")
    # And the re-calibrated cost model agrees (Section 3.3: the
    # optimizer must be re-calibrated for memory-resident structures).
    assert remote_cross > 2 * ssd_cross
