"""Ablation: two extension tiers vs either tier alone (Section 8).

Same total extension budget, four topologies:

* **HDD+SSD** — the whole budget on the local SSD;
* **Custom**  — the whole budget in NDSPI remote memory;
* **ThreeTier** — 1/3 hot SSD tier over a 2/3 remote tier with
  promotion on remote hits (the stock ``Design.THREE_TIER`` spec);
* **ThreeTier/no-promote** — the same split as a pure overflow
  hierarchy, defined inline as a :class:`~repro.tiers.TierSpec`.

Two findings: remote memory outruns the local SSD at equal budget
(the paper's thesis), and the *placement policy* dominates the hybrid —
a stable overflow hierarchy lands between the two pure designs, while
promote-on-hit thrashes under uniform access because every promotion
into the full hot tier forces a demotion right back out.
"""

from conftest import rangescan_experiment

from repro.harness import Design, format_table
from repro.tiers import TierDef, TierSpec

#: Working set ~1.8x the hot SSD tier: the stack must demote.
ROWS = 60_000
BP = 512
EXT = 2000

NO_PROMOTE = TierSpec(
    name="ThreeTier/no-promote",
    extension=(
        TierDef(medium="ssd", share=1.0),
        TierDef(medium="remote", share=2.0),
    ),
    tempdb="remote",
    semcache="remote",
    protocol="ndspi",
    sync_remote_io=True,
)

ABLATION = [Design.HDD_SSD, Design.CUSTOM, Design.THREE_TIER, NO_PROMOTE]


def _label(design):
    return design.value if isinstance(design, Design) else design.name


def run_tier_ablation():
    rows = []
    results = {}
    for design in ABLATION:
        setup, _table, report = rangescan_experiment(
            design, bp_pages=BP, ext_pages=EXT, n_rows=ROWS,
            workers=40, queries=15, warm_queries=5,
        )
        pool = setup.database.pool
        ext = pool.extension
        levels = getattr(ext, "levels", [ext] if ext is not None else [])
        per_tier = ", ".join(f"{lv.tier.name}={lv.hits:,d}" for lv in levels)
        results[_label(design)] = (report, pool, ext)
        rows.append([
            _label(design), report.throughput_qps, pool.ext_hits,
            pool.base_reads, per_tier,
        ])
    print()
    print(format_table(
        ["design", "qps", "ext hits", "HDD reads", "per-tier hits"],
        rows, title="Ablation: one extension tier vs a two-tier stack",
    ))
    return results


def test_tier_stack_ablation(once):
    results = once(run_tier_ablation)
    ssd_report, _, _ = results["HDD+SSD"]
    custom_report, _, _ = results["Custom"]
    promote_report, _, promote_stack = results["ThreeTier"]
    overflow_report, overflow_pool, overflow_stack = results["ThreeTier/no-promote"]

    # The stack is a real hierarchy: both tiers serve pages, and the
    # promote variant moves pages in both directions.
    for stack in (promote_stack, overflow_stack):
        assert len(stack.levels) == 2
        assert all(level.hits > 0 for level in stack.levels)
        assert stack.hits == sum(level.hits for level in stack.levels)
        assert stack.parked_pages == sum(lv.parked_pages for lv in stack.levels)
    assert promote_stack.demotions > 0
    assert promote_stack.promotions > 0

    # Remote memory outruns the SSD at equal budget (Figure 9's gap).
    assert custom_report.throughput_qps > ssd_report.throughput_qps
    # The overflow hierarchy lands between the pure designs: faster
    # than all-SSD (its remote tier serves microsecond reads), slower
    # than all-remote (its hot tier is still an SSD).
    assert overflow_report.throughput_qps > ssd_report.throughput_qps
    assert overflow_report.throughput_qps < custom_report.throughput_qps
    assert overflow_pool.base_reads == 0  # full coverage, no double-cache
    # Promote-on-hit churns under uniform access: every promotion into
    # the full hot tier demotes a page right back out.
    assert promote_stack.demotions >= promote_stack.promotions
    assert overflow_report.throughput_qps > promote_report.throughput_qps


def test_tier_metrics_registered():
    """The stack's levels surface under ``bp.ext.tier.<name>.*``."""
    from repro.harness import build_database

    setup = build_database(
        Design.THREE_TIER, bp_pages=128, bpext_pages=600, tempdb_pages=256
    )
    names = set(setup.metrics.names())
    assert "bp.ext.hits" in names
    assert "bp.ext.demotions" in names
    assert "bp.ext.promotions" in names
    assert "bp.ext.tier.bpext.ssd.hits" in names
    assert "bp.ext.tier.bpext.remote.hits" in names
    assert "bp.ext.tier.bpext.remote.parked_pages" in names
