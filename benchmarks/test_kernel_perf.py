"""Kernel throughput on the Figure 18/19 TPC-H workload.

Unlike the per-figure benchmarks (which assert the *paper's* shapes in
virtual time), this one measures the simulator itself: wall-clock and
events/sec for the measured TPC-H streams under the Custom design.  The
results — and the trajectory of past kernel overhauls — live in
``BENCH_kernel.json`` at the repo root, and CI's ``kernel-perf`` job
fails when events/sec drops more than ``TOLERANCE`` below the committed
baseline.

Wall-clock numbers are machine-dependent, so the baseline also stores a
*calibration score*: iterations/sec of a fixed pure-Python workload
(arithmetic + heap churn, the event loop's staple operations).  The
regression gate scales the committed events/sec by the ratio of the two
calibration scores before comparing, which makes the 20 % tolerance
meaningful on runners of different speeds.

Regenerate the baseline after a deliberate kernel change::

    REPRO_UPDATE_BENCH=1 REPRO_BENCH_LABEL="my-change" \
        PYTHONPATH=src python -m pytest benchmarks/test_kernel_perf.py -o testpaths=
"""

from __future__ import annotations

import heapq
import json
import os
import time
from pathlib import Path

from repro.harness import Design, build_database, prewarm_extension
from repro.workloads import TPCH_QUERIES, build_tpch_database, run_query_streams

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
#: Same configuration as benchmarks/test_fig18_19_tpch.py at 20 spindles.
BP, EXT, TDB = 256, 2600, 49152
#: Allowed events/sec shortfall vs the (calibration-scaled) baseline.
TOLERANCE = 0.20

UPDATE = os.environ.get("REPRO_UPDATE_BENCH", "") == "1"
LABEL = os.environ.get("REPRO_BENCH_LABEL", "updated")


def _calibration_score(repeats: int = 3) -> float:
    """Machine-speed score in arbitrary units (higher = faster)."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        acc = 0
        for _ in range(100):
            heap = [((i * 7919) % 1024, i) for i in range(2000)]
            heapq.heapify(heap)
            while heap:
                when, seq = heapq.heappop(heap)
                acc ^= when + seq
        elapsed = time.perf_counter() - start
        best = max(best, 1.0 / elapsed)
    return best


def run_event_churn(workers: int = 8, iterations: int = 30_000) -> dict:
    """Pure event-loop throughput on the kernel's staple event mix.

    Every kernel generation retires the *same* event stream here (the
    workload never touches the engine), so events/sec is directly
    comparable across overhauls — unlike the macro TPC-H number, where
    a kernel that eliminates scheduler round-trips also shrinks its own
    numerator.  The mix mirrors what the database workloads generate:
    timers, same-instant completions (grants, store handoffs), deadline
    races whose losing timer is abandoned, and a contended resource.
    """
    from repro.sim.kernel import Simulator

    sim = Simulator()
    gate = sim.resource(capacity=2, name="churn.gate")

    def worker(seed: int):
        state = seed
        for _ in range(iterations):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            yield sim.timeout(float(state % 97) / 7.0)
            # Same-instant completion: exercises the now-queue.
            event = sim.event()
            event.succeed()
            yield event
            # Deadline race: the losing timer is abandoned, exercising
            # lazy cancellation (and full dispatch on older kernels).
            yield sim.any_of([sim.timeout(1.0), sim.timeout(2.0)])
            request = gate.request()
            yield request
            yield sim.timeout(1.0)
            gate.release()

    for i in range(workers):
        sim.spawn(worker(i * 2654435761 + 1), name=f"churn-{i}")
    start = time.perf_counter()
    sim.run()
    wall_s = time.perf_counter() - start
    return {
        "wall_s": round(wall_s, 2),
        "events_processed": sim.events_processed,
        "events_per_sec": round(sim.events_processed / wall_s),
    }


def run_kernel_benchmark() -> dict:
    """Run the fig18/19 measured streams; return the perf record."""
    setup = build_database(
        Design.CUSTOM, bp_pages=BP, bpext_pages=EXT, tempdb_pages=TDB,
        data_spindles=20, analytic=True,
    )
    db = setup.database
    tables = build_tpch_database(db)
    prewarm_extension(setup)
    run_query_streams(db, tables, TPCH_QUERIES, streams=1, seed=9)  # warm
    sim = setup.sim
    events_before = sim.events_processed
    start = time.perf_counter()
    report = run_query_streams(db, tables, TPCH_QUERIES, streams=5, seed=1)
    wall_s = time.perf_counter() - start
    events = sim.events_processed - events_before
    return {
        "wall_s": round(wall_s, 2),
        "events_processed": events,
        "events_per_sec": round(events / wall_s),
        "queries_per_hour": round(report.queries_per_hour, 2),
        "calibration_score": round(_calibration_score(), 2),
    }


def _measure() -> dict:
    macro = run_kernel_benchmark()
    calibration = macro.pop("calibration_score")
    return {"macro": macro, "micro": run_event_churn(), "calibration_score": calibration}


def _refresh_baseline(measurement: dict) -> None:
    recorded = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {
        "macro_workload": "fig18/19 TPC-H, Custom design, 20 spindles, 5 measured streams",
        "micro_workload": "event churn: 8 workers x 60k iterations, timers + contended gate",
        "tolerance": TOLERANCE,
        "trajectory": [],
    }
    entry = {"label": LABEL, **measurement}
    recorded["baseline"] = entry
    recorded["trajectory"] = [
        e for e in recorded.get("trajectory", []) if e.get("label") != LABEL
    ] + [entry]
    BENCH_PATH.write_text(json.dumps(recorded, indent=2) + "\n")


def test_kernel_perf():
    measurement = _measure()
    print(f"\nkernel-perf: {json.dumps(measurement)}")
    if UPDATE or not BENCH_PATH.exists():
        _refresh_baseline(measurement)
        return
    baseline = json.loads(BENCH_PATH.read_text())["baseline"]
    scale = measurement["calibration_score"] / baseline["calibration_score"]
    for kind in ("macro", "micro"):
        measured, recorded = measurement[kind], baseline[kind]
        # Both workloads are deterministic, so the event count is exact
        # — a mismatch means the kernel (or workload) changed and the
        # baseline needs a deliberate REPRO_UPDATE_BENCH=1 refresh.
        assert measured["events_processed"] == recorded["events_processed"], (
            f"{kind} event count changed: {measured['events_processed']} vs "
            f"baseline {recorded['events_processed']} — if intentional, "
            f"refresh with REPRO_UPDATE_BENCH=1"
        )
        floor = recorded["events_per_sec"] * scale * (1.0 - TOLERANCE)
        assert measured["events_per_sec"] >= floor, (
            f"{kind} events/sec regression: measured "
            f"{measured['events_per_sec']}, floor {floor:.0f} (baseline "
            f"{recorded['events_per_sec']} x machine-speed ratio "
            f"{scale:.2f} x tolerance {1 - TOLERANCE})"
        )
