"""Distributed shipping axis: page vs query vs hybrid on identical hardware.

Two TPC-H-derived joins run under all three placement strategies
(:class:`repro.dist.Strategy`) on two cluster sizes.  The hardware is
identical in every cell — same servers, NICs, devices — only data
placement differs: page shipping pulls 8K pages from remote memory into
DB server 0, query shipping shuffles tuples between co-located shards,
and the hybrid (NAM-style) does both.  A final pair of cells turns on
Bloom-filter semi-join pushdown and demands fewer shuffled bytes for
the same answer.

Everything runs in virtual time, so the recorded numbers are exact:
``BENCH_dist.json`` is a golden (like ``BENCH_fleet.json``), and drift
means exchange/planner behavior changed and needs a deliberate
refresh::

    REPRO_UPDATE_BENCH=1 PYTHONPATH=src \\
        python -m pytest benchmarks/test_dist_shipping.py -o testpaths=
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import replace
from pathlib import Path

from repro.dist import (
    DistQuery,
    DistSpec,
    Strategy,
    build_strategy,
    execute_plan,
    execute_query,
)
from repro.harness import format_table
from repro.workloads import TpchScale, tpch_returnflag_agg_plan, tpch_star_join_plan

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_dist.json"
UPDATE = os.environ.get("REPRO_UPDATE_BENCH", "") == "1"

SCALE = TpchScale(orders=400, lines_per_order=2, customers=100, parts=80, suppliers=20)
CLUSTER_SIZES = (2, 4)
STRATEGIES = (Strategy.PAGE, Strategy.QUERY, Strategy.HYBRID)
TOTAL_EXT_PAGES = 1024
SEED = 9

#: Both queries project the probe table's primary key, so projected
#: tuples are unique and the full-tuple top-N is a total order — the
#: row-identity assertion across strategies is exact, not approximate.
QUERIES = {
    "cust_orders": DistQuery(
        name="cust_orders",
        build_table="customer", build_key="custkey",
        probe_table="orders", probe_key="custkey",
        build_filter=("acctbal", "<", 60.0),
        probe_filter=("orderdate", "<", 2000),
        projection=(("build", "custkey"), ("build", "acctbal"),
                    ("probe", "orderkey"), ("probe", "totalprice")),
        top_n=300,
    ),
    "order_lines": DistQuery(
        name="order_lines",
        build_table="orders", build_key="orderkey",
        probe_table="lineitem", probe_key="orderkey",
        build_filter=("orderdate", "<", 1200),
        projection=(("build", "orderkey"), ("build", "totalprice"),
                    ("probe", "linekey"), ("probe", "quantity")),
        top_n=300,
    ),
}


def _spec(n: int) -> DistSpec:
    return DistSpec(
        name="bench", db_servers=n, bp_pages=160, tempdb_pages=256,
        data_spindles=2, db_cores=4, seed=SEED,
    )


def _digest(rows: list) -> int:
    return zlib.crc32(repr(rows).encode())


def _cell(setup, result) -> dict:
    return {
        "strategy": result.strategy,
        "rows": len(result.rows),
        "rows_crc": _digest(result.rows),
        "elapsed_us": round(result.elapsed_us, 3),
        "sim_now_us": round(setup.sim.now, 3),
        **result.metrics,
    }


def run_cell(query: DistQuery, n: int, strategy: Strategy) -> dict:
    setup = build_strategy(
        strategy, _spec(n), total_ext_pages=TOTAL_EXT_PAGES,
        scale=SCALE, seed=SEED,
    )
    return _cell(setup, execute_query(setup, query))


def run_plan_cell(plan, name: str, n: int, strategy: Strategy) -> dict:
    setup = build_strategy(
        strategy, _spec(n), total_ext_pages=TOTAL_EXT_PAGES,
        scale=SCALE, seed=SEED,
    )
    return _cell(setup, execute_plan(setup, plan, name=name))


#: Logical plans (repro.plan IR) exercising the distributed lowerings a
#: single DistQuery cannot express: a left-deep three-table star join
#: (the intermediate result shuffles to the supplier owners) and a
#: two-phase group-by (partial per fragment, final merge after gather).
PLAN_CELLS = {
    "star_join": tpch_star_join_plan(top_n=300),
    "returnflag_agg": tpch_returnflag_agg_plan(),
}


def measure() -> dict:
    cells: dict[str, dict] = {}
    rows = []
    for name, query in QUERIES.items():
        for n in CLUSTER_SIZES:
            for strategy in STRATEGIES:
                cell = run_cell(query, n, strategy)
                cells[f"{name}/{n}/{strategy.value}"] = cell
                rows.append([
                    name, n, strategy.value, cell["rows"],
                    cell["elapsed_us"], cell["exchange_bytes"],
                ])
    # Semi-join pushdown: same query, same placement, Bloom filter
    # shipped ahead of the shuffle.
    semi = replace(QUERIES["cust_orders"], semijoin=True)
    cells["cust_orders/2/query+semijoin"] = run_cell(semi, 2, Strategy.QUERY)
    # Multi-join and two-phase aggregation: one IR plan per cell row.
    for name, plan in PLAN_CELLS.items():
        for strategy in STRATEGIES:
            cell = run_plan_cell(plan, name, 2, strategy)
            cells[f"{name}/2/{strategy.value}"] = cell
            rows.append([
                name, 2, strategy.value, cell["rows"],
                cell["elapsed_us"], cell["exchange_bytes"],
            ])
    print()
    print(format_table(
        ["query", "servers", "strategy", "rows", "elapsed (us)",
         "exchange bytes"],
        rows, title="Page vs query vs hybrid shipping on identical hardware",
    ))
    plain = cells["cust_orders/2/query"]
    pushed = cells["cust_orders/2/query+semijoin"]
    print(
        f"semi-join pushdown: {plain['exchange_bytes']} -> "
        f"{pushed['exchange_bytes']} shuffled bytes "
        f"({pushed['bloom_filtered_rows']} probe rows filtered)"
    )
    return cells


def test_dist_shipping_axis(once):
    cells = once(measure)

    for name in QUERIES:
        for n in CLUSTER_SIZES:
            page = cells[f"{name}/{n}/page"]
            query = cells[f"{name}/{n}/query"]
            hybrid = cells[f"{name}/{n}/hybrid"]
            # All three strategies agree row-for-row (crc over the exact
            # projected tuples), and actually returned data.
            assert page["rows"] == query["rows"] == hybrid["rows"] > 0, name
            assert page["rows_crc"] == query["rows_crc"] == hybrid["rows_crc"], name
            # Placement shows up in the metrics: page shipping never
            # touches the exchange fabric, the distributed strategies do.
            assert page["exchange_bytes"] == 0, name
            assert query["exchange_bytes"] > 0, name
            assert hybrid["exchange_bytes"] > 0, name
        # More servers shuffle at least as many tuples (fewer self-ships).
        assert (
            cells[f"{name}/4/query"]["exchange_rows"]
            >= cells[f"{name}/2/query"]["exchange_rows"]
        ), name

    # Semi-join pushdown measurably cuts shuffled bytes, same answer.
    plain = cells["cust_orders/2/query"]
    pushed = cells["cust_orders/2/query+semijoin"]
    assert pushed["rows_crc"] == plain["rows_crc"]
    assert pushed["bloom_filtered_rows"] > 0
    assert pushed["exchange_bytes"] < plain["exchange_bytes"]

    # The IR-plan cells hold to the same contract: identical rows across
    # strategies, and only the distributed lowerings touch the fabric.
    for name in PLAN_CELLS:
        page = cells[f"{name}/2/page"]
        query = cells[f"{name}/2/query"]
        hybrid = cells[f"{name}/2/hybrid"]
        assert page["rows"] == query["rows"] == hybrid["rows"] > 0, name
        assert page["rows_crc"] == query["rows_crc"] == hybrid["rows_crc"], name
        assert page["exchange_bytes"] == 0 < query["exchange_bytes"], name
    # Two-phase aggregation ships partial rows, not lineitems: orders of
    # magnitude fewer exchanged rows than the star join's shuffles.
    assert (
        cells["returnflag_agg/2/query"]["exchange_rows"]
        < cells["star_join/2/query"]["exchange_rows"] / 10
    )

    if UPDATE or not BENCH_PATH.exists():
        BENCH_PATH.write_text(json.dumps({
            "description": "page vs query vs hybrid shipping: 2 TPC-H joins "
                           "x 2 cluster sizes x 3 strategies + semi-join "
                           "pushdown + IR-plan star join and two-phase "
                           "aggregation; virtual-time exact golden",
            "results": cells,
        }, indent=2) + "\n")
        return
    recorded = json.loads(BENCH_PATH.read_text())["results"]
    assert cells == recorded, (
        "distributed shipping benchmark drifted from BENCH_dist.json — if "
        "the change is deliberate, refresh with REPRO_UPDATE_BENCH=1"
    )
