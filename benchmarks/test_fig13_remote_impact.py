"""Figure 13: impact on the server whose memory is accessed remotely.

Server SB runs a CPU-intensive RangeScan entirely from local memory
while server SA streams 8K reads out of SB's spare memory — over RDMA
(one-sided; no SB CPU) or over TCP/SMB (SB's CPU processes every
message).  The paper: TCP costs SB ~10 % throughput and ~20 % at the
99th percentile; RDMA costs nothing measurable.
"""

from repro.broker import MemoryBroker, MemoryProxy
from repro.cluster import Cluster
from repro.harness import format_table
from repro.net import Network, SmbClient, SmbFileServer
from repro.remotefile import RemoteMemoryFilesystem, StagingPool
from repro.storage import GB, KB, RamDrive, Raid0Array, SsdDevice
from repro.engine import Database
from repro.workloads import RangeScanConfig, build_customer_table, run_rangescan

N_ROWS = 60_000
WORKERS = 24
QUERIES = 20


def _make_rig(mode: str):
    """SB: CPU-bound database; SA: remote reader via ``mode``."""
    cluster = Cluster(seed=3)
    network = Network(cluster.sim)
    sb = cluster.add_server("SB", memory_bytes=384 * GB)
    sa = cluster.add_server("SA", memory_bytes=384 * GB)
    network.attach(sb)
    network.attach(sa)
    hdd = sb.attach_device("hdd", Raid0Array(cluster.sim, spindles=20,
                                             rng=cluster.rng.stream("hdd")))
    sb.attach_device("ssd", SsdDevice(cluster.sim))
    db = Database(sb, bp_pages=16384, data_device=hdd)  # everything fits
    table = build_customer_table(db, N_ROWS)
    sim = cluster.sim
    reader_processes = []

    if mode == "RDMA":
        broker = MemoryBroker(sim)
        fs = RemoteMemoryFilesystem(sa, broker, StagingPool(sa))

        def setup():
            yield from fs.initialize()
            proxy = MemoryProxy(sb, broker, mr_bytes=256 * 1024 * 1024)
            yield from proxy.offer_available(limit_bytes=9 * GB)
            file = yield from fs.create("ext", 8 * GB)
            yield from file.open()
            return file

        file = sim.run_until_complete(sim.spawn(setup()))

        def reader(thread: int):
            rng = cluster.rng.stream(f"reader{thread}")
            while True:
                offset = int(rng.integers(0, 8 * GB // (8 * KB))) * 8 * KB
                yield from file.read_nodata(offset, 8 * KB)

        reader_processes = [sim.spawn(reader(t)) for t in range(20)]
    elif mode == "TCP":
        drive = sb.attach_device("ramdrive", RamDrive(sim))
        file_server = SmbFileServer(sb, drive)
        client = SmbClient(sa, file_server)

        def reader(thread: int):
            rng = cluster.rng.stream(f"reader{thread}")
            while True:
                offset = int(rng.integers(0, 8 * GB // (8 * KB))) * 8 * KB
                yield from client.read(offset, 8 * KB)

        reader_processes = [sim.spawn(reader(t)) for t in range(20)]

    return cluster, db, table, reader_processes


def run_figure13():
    results = {}
    rows = []
    for mode in ("Default", "RDMA", "TCP"):
        cluster, db, table, _readers = _make_rig(mode)
        # CPU-intensive local workload: large ranges, all pages cached.
        config = RangeScanConfig(
            n_rows=N_ROWS, workers=WORKERS, queries_per_worker=QUERIES,
            range_size=10_000, seed=4,
        )
        run_rangescan(db, table, RangeScanConfig(
            n_rows=N_ROWS, workers=WORKERS, queries_per_worker=5,
            range_size=10_000, seed=3,
        ), rng=cluster.rng.stream("warm"))
        report = run_rangescan(db, table, config, rng=cluster.rng.stream("m"))
        results[mode] = (
            report.throughput_qps,
            report.latency.mean / 1000.0,
            report.latency.p99 / 1000.0,
        )
        rows.append([mode, *results[mode]])
    print()
    print(format_table(
        ["SB memory accessed via", "SB queries/sec", "avg ms", "p99 ms"], rows,
        title="Figure 13: impact of remote access on the memory server",
    ))
    return results


def test_fig13_remote_impact(once):
    results = once(run_figure13)
    default_qps, default_avg, default_p99 = results["Default"]
    rdma_qps, rdma_avg, rdma_p99 = results["RDMA"]
    tcp_qps, tcp_avg, tcp_p99 = results["TCP"]
    # RDMA: no noticeable impact on the remote server's workload.
    assert abs(rdma_qps - default_qps) / default_qps < 0.03
    assert rdma_p99 < default_p99 * 1.08
    # TCP: ~10% throughput degradation, worse at the tail.
    assert tcp_qps < 0.97 * default_qps
    assert tcp_avg > rdma_avg
    assert tcp_p99 > rdma_p99
