"""Figure 16: priming the buffer pool of a newly-elected primary.

(a) warming the pool through the workload takes ~two orders of
magnitude longer than serializing it on the old primary and
transferring it over RDMA; (b) a primed secondary serves the hotspot
workload with 4-10x lower p95 latency than a cold one.
"""

from repro.broker import MemoryBroker, MemoryProxy
from repro.cluster import Cluster
from repro.engine import Database, prime_pool_from_file, serialize_pool_to_file
from repro.harness import format_table
from repro.net import Network
from repro.remotefile import RemoteMemoryFilesystem, StagingPool
from repro.storage import GB, MB, Raid0Array
from repro.workloads import RangeScanConfig, build_customer_table, run_rangescan

N_ROWS = 100_000
BP_SIZES = (640, 768, 896, 1024)  # pages; paper sweeps 10-25 GB pools


def _hotspot_config(queries_per_worker):
    return RangeScanConfig(
        n_rows=N_ROWS, workers=40, queries_per_worker=queries_per_worker,
        range_size=500, distribution="hotspot", seed=11,
    )


def _build_pair(bp_pages):
    cluster = Cluster(seed=6)
    network = Network(cluster.sim)
    broker = MemoryBroker(cluster.sim)
    servers = {}
    for name in ("S1", "S2"):
        server = cluster.add_server(name, memory_bytes=384 * GB)
        network.attach(server)
        hdd = server.attach_device(
            "hdd", Raid0Array(cluster.sim, spindles=20,
                              rng=cluster.rng.stream(f"hdd.{name}"))
        )
        servers[name] = Database(server, bp_pages=bp_pages, data_device=hdd)
    mem = cluster.add_server("mem", memory_bytes=384 * GB)
    network.attach(mem)
    proxy = MemoryProxy(mem, broker, mr_bytes=64 * MB)
    fs = RemoteMemoryFilesystem(servers["S1"].server, broker,
                                StagingPool(servers["S1"].server))
    fs2 = RemoteMemoryFilesystem(servers["S2"].server, broker,
                                 StagingPool(servers["S2"].server))

    def setup():
        yield from fs.initialize()
        yield from fs2.initialize()
        yield from proxy.offer_available(limit_bytes=2 * GB)

    cluster.sim.run_until_complete(cluster.sim.spawn(setup()))
    return cluster, servers, fs, fs2


def run_figure16():
    results = {}
    rows = []
    for bp_pages in BP_SIZES:
        cluster, dbs, fs, fs2 = _build_pair(bp_pages)
        sim = cluster.sim
        s1, s2 = dbs["S1"], dbs["S2"]
        # Physically-identical replicas of the database.
        table1 = build_customer_table(s1, N_ROWS)
        table2 = build_customer_table(s2, N_ROWS)
        # Warm S1's pool through the workload (the "warmup" bar): the
        # normal production request stream, not a deliberate flood.
        start = sim.now
        warm_config = RangeScanConfig(
            n_rows=N_ROWS, workers=10, queries_per_worker=400,
            range_size=500, distribution="hotspot", seed=11,
        )
        run_rangescan(s1, table1, warm_config, rng=cluster.rng.stream("warm1"))
        warmup_us = sim.now - start
        # Cold S2: measure tail latency before priming.
        cold = run_rangescan(s2, table2, _hotspot_config(8),
                             rng=cluster.rng.stream("cold"))
        s2.pool.drop_all()
        # Serialize S1's pool into an in-memory file, prime S2 from it.
        file_bytes = (bp_pages + 64) * 8192
        primefile = cluster.sim.run_until_complete(cluster.sim.spawn(
            fs.create("prime", file_bytes)))
        sim.run_until_complete(sim.spawn(primefile.open()))
        start = sim.now
        serialize = sim.run_until_complete(
            sim.spawn(serialize_pool_to_file(s1, primefile)))
        serialize_us = sim.now - start
        # S2 opens its own flow to the same leased memory regions.
        primefile.owner = s2.server
        primefile.staging = fs2.staging
        primefile._qps.clear()
        sim.run_until_complete(sim.spawn(primefile.open()))
        start = sim.now
        sim.run_until_complete(sim.spawn(
            prime_pool_from_file(s2, primefile, serialize.pages)))
        transfer_us = sim.now - start
        primed = run_rangescan(s2, table2, _hotspot_config(8),
                               rng=cluster.rng.stream("primed"))
        results[bp_pages] = (
            warmup_us, serialize_us, transfer_us,
            cold.latency.p95 / 1000.0, primed.latency.p95 / 1000.0,
        )
        rows.append([
            f"{bp_pages * 8 // 1024} MB pool", warmup_us / 1e6,
            serialize_us / 1e6, transfer_us / 1e6,
            cold.latency.p95 / 1000.0, primed.latency.p95 / 1000.0,
        ])
    print()
    print(format_table(
        ["pool size", "warm-up s", "serialize s", "transfer s",
         "cold p95 ms", "primed p95 ms"],
        rows, title="Figure 16: buffer-pool priming",
    ))
    return results


def test_fig16_priming(once):
    results = once(run_figure16)
    for bp_pages, (warmup, serialize, transfer, cold_p95, primed_p95) in results.items():
        # Priming is orders of magnitude faster than workload warm-up.
        assert warmup > 15 * (serialize + transfer), bp_pages
        # Primed pool: multiple-x lower p95 than a cold start.
        assert cold_p95 > 2.5 * primed_p95, bp_pages
