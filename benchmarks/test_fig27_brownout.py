"""Figure 27 (companion experiment): RangeScan through a brown-out storm.

PR 1's fault-injection experiment shows the engine recovers *after* a
crash clears.  This experiment shows the reliability layer keeps the
engine fast *while* faults are ongoing: a seeded storm of NIC
degradations (the link to mem0 becomes 50000x slower and lossy) and a
provider flap (a short mem0 crash) runs under a RangeScan workload
spread over two memory servers.

With the layer off, every page read parked at mem0 waits out the
degraded link — a throughput cliff.  With the layer on:

* deadlines cap how long any single transfer can hang,
* hedged reads bound page-fault latency at roughly
  (hedge delay + one local-disk read),
* the mem0 circuit breaker trips, the pool routes around the sick
  provider, and an active prober re-admits it once it answers pings,
* results stay byte-correct throughout, and a same-seed rerun is
  bit-identical (all randomness is drawn from seeded streams).
"""

from repro.faults import FaultEngine, FaultPlan, RecoveryMonitor
from repro.harness import Design, build_database, format_table, prewarm_extension
from repro.harness.dbbench import rebuild_extension
from repro.reliability import ReliabilityPolicy
from repro.workloads import RangeScanConfig, build_customer_table
from repro.workloads.rangescan import _read_query, _start_keys

from conftest import FULL

N_ROWS = 60_000 if not FULL else 120_000
BP_PAGES = 512 if not FULL else 1024
EXT_PAGES = 3200 if not FULL else 6400
RANGE_SIZE = 100
WORKERS = 8
QUERIES_PER_WORKER = 300 if not FULL else 600
SEED = 11

#: The brown-out policy under test: default deadlines/retries/hedging,
#: a quarantine short enough to cycle within the storm.
POLICY = ReliabilityPolicy(breaker_open_us=15_000.0)
PROBE_INTERVAL_US = 5_000.0

#: Storm timeline (virtual us, relative to workload start): NIC
#: brown-out windows around one crash flap, all aimed at mem0.  The
#: degraded link turns a ~2 us NIC engine pass into ~100 ms — far worse
#: than a local-disk read, which is what makes routing around the sick
#: provider the right call.  The last two windows land *after* the
#: post-crash extension rebuild (~226 ms), when mem0 is carrying leases
#: again and nothing else (no crash) will cut a parked transfer short —
#: the windows where waiting out the brown-out is the most expensive.
DEGRADE_MULTIPLIER = 50_000.0
DEGRADE_DROP = 0.05
STORM = [
    ("degrade", 20_000, 25_000),
    ("degrade", 55_000, 25_000),
    ("flap", 90_000, 6_000),
    ("degrade", 105_000, 25_000),
    ("degrade", 240_000, 25_000),
    ("degrade", 280_000, 25_000),
]
STORM_START_US = STORM[0][1]
STORM_END_US = STORM[-1][1] + STORM[-1][2]


def build_storm(start_us: float) -> FaultPlan:
    plan = FaultPlan()
    for kind, at_us, duration_us in STORM:
        if kind == "degrade":
            plan.degrade_link(
                start_us + at_us, "mem0", duration_us,
                latency_multiplier=DEGRADE_MULTIPLIER,
                drop_probability=DEGRADE_DROP,
            )
        else:
            plan.crash(start_us + at_us, "mem0", duration_us=duration_us)
    return plan


def expected_sum(start_key: int) -> float:
    """Closed form of SUM(acctbal) for one query (acctbal = 1000 + key % 9000)."""
    return float(sum(1000 + key % 9000 for key in range(start_key, start_key + RANGE_SIZE)))


def run_experiment(reliability: bool, storm: bool, use_extension: bool = True):
    """One RangeScan run over two memory servers; optionally storm mem0."""
    setup = build_database(
        Design.CUSTOM,
        bp_pages=BP_PAGES, bpext_pages=EXT_PAGES, tempdb_pages=1024,
        n_memory_servers=2, seed=SEED,
        reliability=POLICY if reliability else None,
    )
    db = setup.database
    table = build_customer_table(db, N_ROWS)
    extension = db.pool.extension
    if use_extension:
        prewarm_extension(setup)
    else:
        extension.enabled = False  # local-disk baseline

    monitor = RecoveryMonitor(setup.sim)
    monitor.track_extension(extension)
    layer = setup.reliability
    if layer is not None:
        monitor.track_reliability(layer)
    if storm:
        engine = FaultEngine.for_setup(
            setup,
            monitor=monitor,
            # A crashed provider lost its leases: re-acquire on restore
            # (same operator response as the fig26b experiment).
            on_provider_restored=lambda _name: rebuild_extension(setup),
        )
        engine.run_plan(build_storm(setup.sim.now))

    sim = setup.sim
    if layer is not None:
        # Active health prober: pings quarantined providers so an OPEN
        # breaker is re-admitted as soon as its quarantine elapses.
        def prober():
            while True:
                yield sim.timeout(PROBE_INTERVAL_US)
                for name in layer.quarantined_providers():
                    proxy = setup.proxies.get(name)
                    if proxy is not None:
                        yield from layer.probe(setup.db_server, proxy)

        sim.spawn(prober(), name="reliability.prober")

    config = RangeScanConfig(
        n_rows=N_ROWS, workers=WORKERS, queries_per_worker=QUERIES_PER_WORKER, seed=2
    )
    rng = setup.cluster.rng.stream("fig27")
    total = config.workers * config.queries_per_worker
    starts = _start_keys(config, rng, total)
    completions: list[float] = []
    #: Per-query (completed_at_us, latency_us), both relative to start.
    query_latencies: list[tuple[float, float]] = []
    wrong_results = 0
    begin = sim.now

    def worker(worker_index: int):
        nonlocal wrong_results
        base = worker_index * config.queries_per_worker
        for query_index in range(config.queries_per_worker):
            start_key = int(starts[base + query_index])
            query_begin = sim.now
            yield from db.server.cpu.compute(db.query_setup_cpu_us)
            value = yield from _read_query(db, table, start_key, RANGE_SIZE)
            if value != expected_sum(start_key):
                wrong_results += 1
            completions.append(sim.now - begin)
            query_latencies.append((sim.now - begin, sim.now - query_begin))

    processes = [sim.spawn(worker(index)) for index in range(config.workers)]

    def await_all():
        yield sim.all_of(processes)

    sim.run_until_complete(sim.spawn(await_all()))
    return {
        "setup": setup,
        "monitor": monitor,
        "extension": extension,
        "pool": db.pool,
        "completions": completions,
        "query_latencies": query_latencies,
        "wrong_results": wrong_results,
        "qps": total / ((sim.now - begin) / 1e6),
        "fault_p99": db.pool.fault_latency.p99,
        "layer_snapshot": layer.snapshot() if layer is not None else None,
        "monitor_snapshot": [
            {**record, "injected_at_us": record["injected_at_us"] - begin}
            for record in monitor.snapshot()
        ],
    }


def storm_window_qps(result) -> float:
    """Query throughput inside the storm window (completions/s)."""
    count = sum(1 for t in result["completions"] if STORM_START_US <= t < STORM_END_US)
    return count / ((STORM_END_US - STORM_START_US) / 1e6)


def storm_window_query_p99(result) -> float:
    """p99 latency of queries completed inside the storm window."""
    from repro.sim import LatencyRecorder

    recorder = LatencyRecorder("window")
    for completed_at, latency in result["query_latencies"]:
        if STORM_START_US <= completed_at < STORM_END_US:
            recorder.record(latency)
    return recorder.p99


def replay_fingerprint(result) -> dict:
    """Everything that must be bit-identical across same-seed reruns."""
    return {
        "completions": result["completions"],
        "query_latencies": result["query_latencies"],
        "wrong_results": result["wrong_results"],
        "qps": result["qps"],
        "fault_p99": result["fault_p99"],
        "layer": result["layer_snapshot"],
        "monitor": result["monitor_snapshot"],
    }


def run_figure27():
    disk = run_experiment(reliability=False, storm=False, use_extension=False)
    layer_off = run_experiment(reliability=False, storm=True)
    layer_on = run_experiment(reliability=True, storm=True)
    replay = run_experiment(reliability=True, storm=True)

    print()
    print(format_table(
        ["run", "qps", "storm-window qps", "fault p99 (us)", "wrong results"],
        [
            ["local-disk baseline", f"{disk['qps']:.0f}", f"{storm_window_qps(disk):.0f}",
             f"{disk['fault_p99']:.0f}", disk["wrong_results"]],
            ["storm, layer off", f"{layer_off['qps']:.0f}",
             f"{storm_window_qps(layer_off):.0f}",
             f"{layer_off['fault_p99']:.0f}", layer_off["wrong_results"]],
            ["storm, layer on", f"{layer_on['qps']:.0f}",
             f"{storm_window_qps(layer_on):.0f}",
             f"{layer_on['fault_p99']:.0f}", layer_on["wrong_results"]],
        ],
        title="Figure 27: RangeScan through a brown-out storm",
    ))
    layer = layer_on["layer_snapshot"]
    print()
    print(format_table(
        ["metric", "value"],
        [
            ["deadline hits (read/write/rpc)",
             "/".join(str(layer["deadline_hits"][k]) for k in ("read", "write", "rpc"))],
            ["retries (read/rpc)",
             "/".join(str(layer["retries"][k]) for k in ("read", "rpc"))],
            ["breaker transitions", len(layer["breaker_transitions"])],
            ["hedged reads issued", layer["hedge"]["issued"]],
            ["hedge backup wins", layer["hedge"]["backup_wins"]],
            ["hedge rescues", layer["hedge"]["rescues"]],
            ["ext quarantine skips", layer_on["extension"].quarantine_skips],
            ["ext transient failures", layer_on["extension"].transient_failures],
        ],
        title="reliability layer activity (storm, layer on)",
    ))
    print()
    print(layer_on["monitor"].report())
    return disk, layer_off, layer_on, replay


def test_fig27_brownout(once):
    disk, layer_off, layer_on, replay = once(run_figure27)

    # Correctness is never compromised: every SUM matches the closed
    # form in every run, storm or not.
    for result in (disk, layer_off, layer_on, replay):
        assert result["wrong_results"] == 0

    # The storm actually hit and the layer actually engaged: breakers
    # tripped on mem0, the prober re-admitted it, hedged backups fired
    # and won races, deadlines cut degraded transfers short.
    layer = layer_on["layer_snapshot"]
    transitions = layer["breaker_transitions"]
    assert any(t[1] == "mem0" and t[3] == "open" for t in transitions)
    assert any(t[1] == "mem0" and t[3] == "closed" for t in transitions)
    assert layer["hedge"]["issued"] > 0
    assert layer["hedge"]["backup_wins"] > 0
    assert layer["deadline_hits"]["read"] > 0
    # The monitor attributed breaker activity to the injected faults.
    assert any(r["breaker_transitions"] for r in layer_on["monitor_snapshot"])

    # Hedging bounds the page-fault tail: p99 stays within the hedge
    # delay plus a local-disk read (the disk baseline's own p99 measures
    # exactly that read under identical load), while the layer-off run
    # waits out the browned-out link.
    bound = POLICY.hedge_max_delay_us + 2.0 * disk["fault_p99"]
    assert layer_on["fault_p99"] <= bound
    # The layer-off run's tail inside the storm window waits out the
    # browned-out link (~50 ms reads); the layer-on tail stays bounded.
    assert storm_window_query_p99(layer_off) > 1.5 * storm_window_query_p99(layer_on)

    # Graceful slope instead of a cliff: the layer wins while the storm
    # is raging, and end to end.
    assert storm_window_qps(layer_on) > storm_window_qps(layer_off)
    assert layer_on["qps"] > layer_off["qps"]

    # Bit-identical replay: same seed, same storm, same everything.
    assert replay_fingerprint(layer_on) == replay_fingerprint(replay)
