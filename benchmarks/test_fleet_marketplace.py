"""Fleet benchmark: static partitioning vs the memory marketplace.

Two scenarios, each run twice — once with every tenant frozen at its
static share of the pool, once with the marketplace rebalancing leases
from demand signals:

* **traffic-shift** — two tenants with anti-phase diurnal load over
  one pool.  Statically, each tenant's peak runs against half the
  memory while the other half idles; the marketplace moves pages to
  whoever is climbing toward peak.  The acceptance gate: the GOLD
  tenant (never a reclaim victim) must see a *better p99* with the
  marketplace than with static partitioning.
* **failure-storm** — steady load while half the memory servers crash
  and later return.  Anti-affinity placement means each tenant loses
  only a slice of its extension; the marketplace repairs and re-grants
  once capacity returns, where the static fleet limps on whatever
  survived.

Everything runs in virtual time, so the recorded numbers are exact:
``BENCH_fleet.json`` is a golden (like the design-parity clocks), and
drift means fleet behavior changed and needs a deliberate refresh::

    REPRO_UPDATE_BENCH=1 PYTHONPATH=src \\
        python -m pytest benchmarks/test_fleet_marketplace.py -o testpaths=

Each scenario also exports a Perfetto trace (set ``REPRO_TRACE_DIR`` to
keep them; defaults to the system temp directory).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.faults import FaultPlan
from repro.fleet import (
    DiurnalShape,
    FleetSpec,
    MarketplacePolicy,
    QosClass,
    SteadyShape,
    TenantSpec,
    build_fleet,
    run_fleet,
)
from repro.telemetry import install, validate_chrome_trace, write_chrome_trace

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"
UPDATE = os.environ.get("REPRO_UPDATE_BENCH", "") == "1"
TRACE_DIR = Path(os.environ.get("REPRO_TRACE_DIR", tempfile.gettempdir()))

POLICY = MarketplacePolicy(period_us=1e6, cooldown_us=4e6, min_delta_pages=256)


def shift_spec() -> FleetSpec:
    """Anti-phase diurnal pair: memory should follow the sun."""
    period = 24e6
    return FleetSpec(
        name="traffic-shift",
        memory_servers=4,
        tenants=(
            TenantSpec(name="acme", replicas=1, ext_pages=384, bp_pages=64,
                       peak_queries_per_epoch=90, workers=8, n_rows=24_000,
                       floor_pages=256,
                       shape=DiurnalShape(period_us=period, low=0.05, high=1.0,
                                          phase=0.0)),
            TenantSpec(name="zen", qos=QosClass.GOLD, replicas=1, ext_pages=384,
                       bp_pages=64, peak_queries_per_epoch=90, workers=8,
                       n_rows=24_000, floor_pages=256,
                       shape=DiurnalShape(period_us=period, low=0.05, high=1.0,
                                          phase=0.5)),
        ),
    )


def storm_spec() -> FleetSpec:
    """Steady load; half the memory servers crash mid-run."""
    return FleetSpec(
        name="failure-storm",
        memory_servers=4,
        tenants=(
            TenantSpec(name="acme", replicas=2, ext_pages=1024, bp_pages=64,
                       peak_queries_per_epoch=60, workers=6, n_rows=12_000,
                       shape=SteadyShape(level=0.8)),
            TenantSpec(name="zen", qos=QosClass.GOLD, replicas=2, ext_pages=1024,
                       bp_pages=64, peak_queries_per_epoch=60, workers=6,
                       n_rows=12_000, shape=SteadyShape(level=0.8)),
        ),
    )


def storm_plan() -> FaultPlan:
    # Correlated crash: two of four providers die within 200ms and come
    # back four (virtual) seconds later.
    return (
        FaultPlan()
        .crash(3.0e6, "mem0", duration_us=4e6)
        .crash(3.2e6, "mem1", duration_us=4e6)
    )


def run_scenario(name, spec_factory, epochs, marketplace, fault_plan=None) -> dict:
    setup = build_fleet(spec_factory(), marketplace=POLICY if marketplace else None)
    tracer = install(setup.sim)
    report = run_fleet(
        setup, epochs=epochs, epoch_us=1e6,
        fault_plan=fault_plan() if fault_plan else None,
    )
    trace_path = TRACE_DIR / f"fleet_{name}_{'market' if marketplace else 'static'}.trace.json"
    write_chrome_trace(tracer, str(trace_path), label=f"fleet {name}")
    with open(trace_path) as fh:
        events = validate_chrome_trace(json.load(fh))
    assert events, f"empty Perfetto trace for {name}"
    return report.as_dict()


def measure() -> dict:
    scenarios = {}
    for name, factory, epochs, plan in (
        ("traffic-shift", shift_spec, 24, None),
        ("failure-storm", storm_spec, 10, storm_plan),
    ):
        static = run_scenario(name, factory, epochs, marketplace=False, fault_plan=plan)
        market = run_scenario(name, factory, epochs, marketplace=True, fault_plan=plan)
        comparison = {}
        for tenant in static["tenants"]:
            comparison[tenant] = {
                "static_p99_ms": static["tenants"][tenant]["latency_p99_ms"],
                "marketplace_p99_ms": market["tenants"][tenant]["latency_p99_ms"],
                "p99_speedup": round(
                    static["tenants"][tenant]["latency_p99_ms"]
                    / max(market["tenants"][tenant]["latency_p99_ms"], 1e-9),
                    4,
                ),
            }
        scenarios[name] = {
            "static": static,
            "marketplace": market,
            "comparison": comparison,
            "aggregate_qps": {
                "static": static["aggregate_qps"],
                "marketplace": market["aggregate_qps"],
            },
        }
    return scenarios


def test_fleet_marketplace():
    scenarios = measure()
    summary = {
        name: data["comparison"] for name, data in scenarios.items()
    }
    print(f"\nfleet-bench: {json.dumps(summary)}")

    # Acceptance: during the traffic shift the GOLD tenant — never a
    # reclaim victim — must do better on p99 with the marketplace.
    shift = scenarios["traffic-shift"]["comparison"]
    assert shift["zen"]["marketplace_p99_ms"] < shift["zen"]["static_p99_ms"], (
        f"marketplace did not beat static partitioning on the victim-free "
        f"tenant's p99: {shift['zen']}"
    )
    # And the storm must degrade, not destroy: every tenant keeps
    # serving queries through a two-provider crash in both modes.
    for mode in ("static", "marketplace"):
        for tenant, record in scenarios["failure-storm"][mode]["tenants"].items():
            assert record["queries"] > 0, f"{tenant} starved during the storm ({mode})"

    if UPDATE or not BENCH_PATH.exists():
        BENCH_PATH.write_text(json.dumps({
            "description": "static partitioning vs marketplace rebalancing; "
                           "virtual-time exact golden",
            "scenarios": scenarios,
        }, indent=2) + "\n")
        return
    recorded = json.loads(BENCH_PATH.read_text())["scenarios"]
    assert scenarios == recorded, (
        "fleet benchmark drifted from BENCH_fleet.json — if the change is "
        "deliberate, refresh with REPRO_UPDATE_BENCH=1"
    )
