"""Figure 12: impact of varying the BPExt size.

(a) all remote memory from one server vs (b) spread over several:
throughput rises and latency falls as the extension grows — until it
covers the whole database — and the curves are identical regardless of
how many servers provide the memory.
"""

from conftest import rangescan_experiment

from repro.harness import Design, format_table

#: Extension sizes (pages): from "BPExt = local memory" up to "covers
#: the table" (paper: 32 GB .. 144 GB in a 110 GB database).
EXT_SIZES = (1024, 2048, 3072, 4096, 5120)


def run_figure12():
    results = {}
    rows = []
    for label, servers in (("one memory server", 1), ("multiple memory servers", 4)):
        for ext_pages in EXT_SIZES:
            _setup, _table, report = rangescan_experiment(
                Design.CUSTOM, ext_pages=ext_pages, workers=80, queries=20,
                n_memory_servers=servers,
            )
            results[(label, ext_pages)] = (
                report.throughput_qps, report.latency.mean / 1000.0
            )
            rows.append([
                label, ext_pages * 8 // 1024, report.throughput_qps,
                report.latency.mean / 1000.0,
            ])
    print()
    print(format_table(
        ["providers", "BPExt MB", "queries/sec", "latency ms"], rows,
        title="Figure 12: varying the buffer-pool-extension size",
    ))
    return results


def test_fig12_bpext_size(once):
    results = once(run_figure12)
    one = [results[("one memory server", size)] for size in EXT_SIZES]
    many = [results[("multiple memory servers", size)] for size in EXT_SIZES]
    # Monotone-ish improvement with more remote memory.
    assert one[-1][0] > 1.5 * one[0][0]
    assert one[-1][1] < one[0][1]
    # Pooled-from-many behaves like one big server (within 15%).
    for (qps_one, _lat1), (qps_many, _lat2) in zip(one, many):
        assert abs(qps_one - qps_many) / qps_one < 0.15
