"""Figure 5: one database server pooling memory from 1..8 memory servers.

The total remote memory is constant; throughput and latency should be
essentially independent of how many servers provide it (the DB server's
NIC is the shared bottleneck either way).
"""

from repro.harness import build_custom_multi, format_table
from repro.workloads import RANDOM_8K, SEQUENTIAL_512K, run_sqlio


def run_figure5():
    results = {}
    rows = []
    for n_servers in (1, 2, 4, 8):
        random_target = build_custom_multi(n_servers)
        random = run_sqlio(
            random_target.cluster.sim, random_target, RANDOM_8K,
            span_bytes=random_target.span_bytes,
            rng=random_target.cluster.rng.stream("sqlio"),
        )
        seq_target = build_custom_multi(n_servers)
        sequential = run_sqlio(
            seq_target.cluster.sim, seq_target, SEQUENTIAL_512K,
            span_bytes=seq_target.span_bytes,
            rng=seq_target.cluster.rng.stream("sqlio"),
        )
        results[n_servers] = (
            random.throughput_gb_per_s, random.mean_latency_us,
            sequential.throughput_gb_per_s, sequential.mean_latency_us,
        )
        rows.append([n_servers, *results[n_servers]])
    print()
    print(format_table(
        ["memory servers", "rand GB/s", "rand us", "seq GB/s", "seq us"], rows,
        title="Figure 5: constant remote memory spread over 1..8 memory servers",
    ))
    return results


def test_fig05_multi_memory_servers(once):
    results = once(run_figure5)
    base_rand, base_lat, base_seq, _ = results[1]
    for n_servers, (rand, lat, seq, _seq_lat) in results.items():
        # Negligible impact as the provider count varies (paper: the DB
        # server's NIC saturates either way).
        assert abs(rand - base_rand) / base_rand < 0.25, n_servers
        assert abs(seq - base_seq) / base_seq < 0.25, n_servers
    # With 8 providers the random latency is not worse than with 1
    # (the paper observes slightly *lower* latency from parallelism).
    assert results[8][1] <= base_lat * 1.15
