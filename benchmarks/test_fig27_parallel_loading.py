"""Figure 27 (Appendix C): parallel flat-file loading on idle servers.

80 splits (~2 GB each in the paper; scaled here) are parsed/converted
on 1..8 servers; the destination then pulls the loaded partitions over
RDMA.  Load time drops near-linearly; the copy stays negligible
(paper: 6919 s on one server vs 894 s on eight, ~7.7x).
"""

from repro.cluster import Cluster
from repro.engine import LoadSplit, load_splits, parallel_load
from repro.harness import format_table
from repro.net import Network
from repro.storage import MB

import numpy as np

#: 80 splits averaging ~2 MB (paper: 80 x ~2 GB average, variable).
_rng = np.random.default_rng(7)
SPLITS = [
    LoadSplit(split_id=index, size_bytes=int(_rng.uniform(1.0, 3.0) * MB))
    for index in range(80)
]


def run_figure27():
    results = {}
    rows = []
    for n_servers in (1, 2, 4, 8):
        cluster = Cluster(seed=2)
        network = Network(cluster.sim)
        destination = cluster.add_server("dest")
        network.attach(destination)
        helpers = []
        for index in range(n_servers):
            helper = cluster.add_server(f"load{index}")
            network.attach(helper)
            helpers.append(helper)
        sim = cluster.sim
        if n_servers == 1:
            job = sim.spawn(load_splits(destination, SPLITS))
        else:
            job = sim.spawn(parallel_load(destination, helpers, SPLITS))
        report = sim.run_until_complete(job)
        results[n_servers] = (report.load_us, report.copy_us)
        rows.append([n_servers, report.load_us / 1e6, report.copy_us / 1e6,
                     report.total_us / 1e6])
    print()
    print(format_table(
        ["servers", "load s", "copy s", "total s"], rows,
        title="Figure 27: parallel data loading",
    ))
    return results


def test_fig27_parallel_loading(once):
    results = once(run_figure27)
    one = results[1][0] + results[1][1]
    eight = results[8][0] + results[8][1]
    # Near-linear speedup (paper: ~7.7x with 8 servers).
    assert one / eight > 5.5
    # The RDMA copy phase stays negligible next to the load.
    for n_servers, (load_us, copy_us) in results.items():
        if n_servers > 1:
            assert copy_us < 0.1 * load_us, n_servers
