"""Figure 26b (companion experiment): RangeScan under a memory-server crash.

Remote memory is best-effort (Section 4.1.5): when the provider backing
the BPExt dies mid-workload, queries must keep returning *correct*
results — throughput collapses to roughly the local-disk baseline while
every access re-faults from the HDD array, then climbs back once the
extension is rebuilt on fresh leases.

The experiment injects a deterministic memory-server crash in the middle
of a RangeScan run, verifies every query's SUM(acctbal) against the
closed-form expectation, and prints the three throughput phases the
figure plots: healthy, during-fault, recovered.
"""

from repro.faults import FaultEngine, FaultPlan, RecoveryMonitor
from repro.harness import Design, build_database, format_table, prewarm_extension
from repro.harness.dbbench import rebuild_extension
from repro.workloads import RangeScanConfig, build_customer_table
from repro.workloads.rangescan import _read_query

from conftest import FULL

N_ROWS = 60_000 if not FULL else 120_000
BP_PAGES = 512 if not FULL else 1024
EXT_PAGES = 3200 if not FULL else 6400
RANGE_SIZE = 100
WORKERS = 8
QUERIES_PER_WORKER = 600 if not FULL else 1200
#: Crash timing relative to workload start (virtual us).
CRASH_AFTER_US = 30_000
CRASH_DURATION_US = 40_000


def expected_sum(start_key: int) -> float:
    """Closed form of SUM(acctbal) for one query (acctbal = 1000 + key % 9000)."""
    return float(sum(1000 + key % 9000 for key in range(start_key, start_key + RANGE_SIZE)))


def run_experiment(inject_fault: bool, use_extension: bool = True):
    """One RangeScan run; optionally crash mem0 mid-flight."""
    setup = build_database(
        Design.CUSTOM, bp_pages=BP_PAGES, bpext_pages=EXT_PAGES, tempdb_pages=1024,
    )
    db = setup.database
    table = build_customer_table(db, N_ROWS)
    extension = db.pool.extension
    if use_extension:
        prewarm_extension(setup)
    else:
        extension.enabled = False  # local-disk baseline: every miss hits the HDDs

    monitor = RecoveryMonitor(setup.sim)
    monitor.track_extension(extension)
    if inject_fault:
        engine = FaultEngine.for_setup(
            setup,
            monitor=monitor,
            on_provider_restored=lambda _name: rebuild_extension(setup),
        )
        plan = FaultPlan().crash(
            setup.sim.now + CRASH_AFTER_US, "mem0", duration_us=CRASH_DURATION_US
        )
        engine.run_plan(plan)
        monitor.watch_recovery(
            lambda: extension.hits, threshold_per_s=20_000.0, interval_us=5_000
        )

    config = RangeScanConfig(n_rows=N_ROWS, workers=WORKERS,
                             queries_per_worker=QUERIES_PER_WORKER, seed=2)
    rng = setup.cluster.rng.stream("fig26b")
    total = config.workers * config.queries_per_worker
    from repro.workloads.rangescan import _start_keys

    starts = _start_keys(config, rng, total)
    completions: list[float] = []
    wrong_results = 0
    sim = setup.sim
    begin = sim.now

    def worker(worker_index: int):
        nonlocal wrong_results
        base = worker_index * config.queries_per_worker
        for query_index in range(config.queries_per_worker):
            start_key = int(starts[base + query_index])
            yield from db.server.cpu.compute(db.query_setup_cpu_us)
            value = yield from _read_query(db, table, start_key, RANGE_SIZE)
            if value != expected_sum(start_key):
                wrong_results += 1
            completions.append(sim.now)

    processes = [sim.spawn(worker(index)) for index in range(config.workers)]

    def await_all():
        yield sim.all_of(processes)

    sim.run_until_complete(sim.spawn(await_all()))
    return {
        "setup": setup,
        "monitor": monitor,
        "extension": extension,
        "begin_us": begin,
        "end_us": sim.now,
        "completions": completions,
        "wrong_results": wrong_results,
        "qps": total / ((sim.now - begin) / 1e6),
    }


def rate_in_window(completions, start_us, end_us) -> float:
    if end_us <= start_us:
        return 0.0
    count = sum(1 for t in completions if start_us <= t < end_us)
    return count / ((end_us - start_us) / 1e6)


def run_figure26b():
    disk = run_experiment(inject_fault=False, use_extension=False)
    healthy = run_experiment(inject_fault=False)
    faulted = run_experiment(inject_fault=True)

    record = faulted["monitor"].records[0]
    t_inject = record.injected_at_us
    t_restored = record.restored_at_us
    t_recovered = record.recovered_at_us
    completions = faulted["completions"]
    end = faulted["end_us"]

    phases = {
        "healthy (pre-fault)": rate_in_window(completions, faulted["begin_us"], t_inject),
        "during fault": rate_in_window(completions, t_inject, t_restored),
        # From recovery onward the extension is still re-warming, so the
        # figure distinguishes the climb from the settled tail.
        "recovered (ramp)": rate_in_window(completions, t_recovered, end),
        "recovered (tail)": rate_in_window(completions, (t_recovered + end) / 2, end),
    }

    print()
    print(format_table(
        ["run", "qps", "wrong results", "ext failures", "pages lost"],
        [
            ["local-disk baseline", f"{disk['qps']:.0f}", disk["wrong_results"],
             disk["extension"].failures, disk["extension"].pages_lost_to_faults],
            ["custom, healthy", f"{healthy['qps']:.0f}", healthy["wrong_results"],
             healthy["extension"].failures, healthy["extension"].pages_lost_to_faults],
            ["custom, crash injected", f"{faulted['qps']:.0f}", faulted["wrong_results"],
             faulted["extension"].failures, faulted["extension"].pages_lost_to_faults],
        ],
        title="Figure 26b: RangeScan through a memory-server crash",
    ))
    print()
    print(format_table(
        ["phase", "window ms", "qps"],
        [
            [name,
             f"{(w_end - w_start) / 1e3:.1f}",
             f"{rate:.0f}"]
            for (name, rate), (w_start, w_end) in zip(
                phases.items(),
                [(faulted["begin_us"], t_inject), (t_inject, t_restored),
                 (t_recovered, end), ((t_recovered + end) / 2, end)],
            )
        ],
        title="throughput phases (crash run)",
    ))
    print()
    print(faulted["monitor"].report())
    return disk, healthy, faulted, phases


def test_fig26b_fault_injection(once):
    disk, healthy, faulted, phases = once(run_figure26b)

    # Correctness is never compromised: every SUM matches the closed form
    # in every run, fault or not (best-effort remote memory, §4.1.5).
    assert disk["wrong_results"] == 0
    assert healthy["wrong_results"] == 0
    assert faulted["wrong_results"] == 0

    # The crash actually hit: parked pages were lost and the workload
    # observed failures on the access path.
    record = faulted["monitor"].records[0]
    assert record.pages_lost > 0
    assert record.detected_at_us is not None
    assert record.restored_at_us is not None

    # Healthy BPExt throughput is far above the local-disk baseline...
    assert healthy["qps"] > 3 * disk["qps"]
    assert phases["healthy (pre-fault)"] > 3 * disk["qps"]
    # ...during the fault it degrades to roughly the disk baseline...
    assert phases["during fault"] < 2.0 * disk["qps"]
    # ...and after the extension is rebuilt it recovers: the ramp is
    # already far above the fault floor, the settled tail approaches the
    # healthy rate as the extension re-warms.
    assert record.recovered_at_us is not None
    assert phases["recovered (ramp)"] > 3 * phases["during fault"]
    assert phases["recovered (tail)"] > 0.5 * phases["healthy (pre-fault)"]
