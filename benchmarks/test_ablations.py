"""Ablations for the design choices of Table 1.

The paper motivates each choice qualitatively (Section 4.1); these
benchmarks quantify them in the simulation:

* synchronous vs asynchronous vs adaptive waiting for remote reads,
* pre-registered staging buffers vs registering pages on demand,
* the size of the per-scheduler staging buffer (outstanding transfers),
* lease churn: what expiry/renewal costs the workload.
"""

from dataclasses import replace

from repro.harness import format_table
from repro.harness.iobench import build_io_target
from repro.net.rdma import RdmaRegistrar
from repro.remotefile import AccessPolicy, StagingPool
from repro.workloads import RANDOM_8K, run_sqlio
from repro.storage import KB


def _custom_with_policy(policy: AccessPolicy, staging_buffer_kb: int = 1024):
    target = build_io_target("Custom")
    # Rebuild the remote file's policy/staging in place.
    file = target._reader.file
    file.policy = policy
    return target


def run_policy_ablation():
    """Sync vs async vs adaptive on a busy server (Section 4.1.3).

    The async penalty is the context switch plus waiting to be scheduled
    back in, so it only shows when the CPU has other work — exactly the
    situation of a database server under load."""
    rows = []
    results = {}
    for policy in (AccessPolicy.SYNC, AccessPolicy.ASYNC, AccessPolicy.ADAPTIVE):
        target = _custom_with_policy(policy)
        cpu = target.db_server.cpu
        # Background query processing keeps most cores busy.
        for _ in range(cpu.cores.capacity * 2):
            target.cluster.sim.spawn(cpu.background_load(45.0, 50.0))
        pattern = replace(RANDOM_8K, threads=4, ops_per_thread=400)
        result = run_sqlio(
            target.cluster.sim, target, pattern, span_bytes=target.span_bytes,
            rng=target.cluster.rng.stream("sqlio"),
        )
        switches = target.db_server.cpu.context_switches
        results[policy] = (result.mean_latency_us, result.throughput_gb_per_s, switches)
        rows.append([policy.value, result.mean_latency_us,
                     result.throughput_gb_per_s, switches])
    print()
    print(format_table(
        ["wait policy", "8K rand latency us", "GB/s", "context switches"],
        rows, title="Ablation: synchronous vs asynchronous remote reads (Table 1)",
    ))
    return results


def test_ablation_sync_vs_async(once):
    results = once(run_policy_ablation)
    sync_lat, sync_thr, sync_switches = results[AccessPolicy.SYNC]
    async_lat, async_thr, async_switches = results[AccessPolicy.ASYNC]
    adaptive_lat, _thr, adaptive_switches = results[AccessPolicy.ADAPTIVE]
    # The paper's Section 4.1.3: sync avoids context switches entirely
    # and wins on latency for microsecond-scale transfers.
    assert sync_switches == 0
    assert async_switches > 1000
    # Under CPU load the async completion queues behind busy cores.
    assert sync_lat < 0.8 * async_lat
    assert sync_thr > async_thr
    # Adaptive tracks sync when transfers complete within the spin budget.
    assert adaptive_lat < async_lat


def run_registration_ablation():
    """Pre-registered staging memcpy vs registering each page on demand."""
    target = build_io_target("Custom")
    registrar = RdmaRegistrar(target.db_server)
    staging = StagingPool(target.db_server)
    per_page_register_us = registrar.registration_cost_us(8 * KB)
    per_page_memcpy_us = staging.memcpy_us(8 * KB)
    print()
    print(format_table(
        ["strategy", "per-8K-page overhead us"],
        [["register on demand", per_page_register_us],
         ["pre-registered staging + memcpy", per_page_memcpy_us]],
        title="Ablation: MR registration strategy (Section 4.1.4)",
    ))
    return per_page_register_us, per_page_memcpy_us


def test_ablation_registration(once):
    register_us, memcpy_us = once(run_registration_ablation)
    # Paper: registering an 8K page costs ~50 us, the memcpy ~2 us.
    assert 40 < register_us < 60
    assert 1.5 < memcpy_us < 2.5
    assert register_us > 20 * memcpy_us


def run_staging_ablation():
    """Fewer staging slots throttle outstanding transfers."""
    rows = []
    results = {}
    for slots_kb in (32, 128, 1024):
        target = build_io_target("Custom")
        file = target._reader.file
        # Shrink the staging pool: capacity in 8K slots.
        file.staging.slots.capacity = max(1, slots_kb // 8)
        pattern = replace(RANDOM_8K, ops_per_thread=300)
        result = run_sqlio(
            target.cluster.sim, target, pattern, span_bytes=target.span_bytes,
            rng=target.cluster.rng.stream("sqlio"),
        )
        results[slots_kb] = result.throughput_gb_per_s
        rows.append([slots_kb, result.throughput_gb_per_s, result.mean_latency_us])
    print()
    print(format_table(
        ["staging KB/scheduler-pool", "GB/s", "latency us"], rows,
        title="Ablation: staging buffer size (outstanding RDMA transfers)",
    ))
    return results


def test_ablation_staging_size(once):
    results = once(run_staging_ablation)
    # A tiny staging pool bottlenecks concurrency; 1 MB (the paper's
    # tuned value) is enough to saturate.
    assert results[1024] >= results[128] >= results[32]
    assert results[1024] > 1.5 * results[32]
