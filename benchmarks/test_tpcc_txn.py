"""Transactional TPC-C axis: conflict rate x design under strict 2PL.

The fig 22/23 runs use the per-district discipline (the paper's
contention profile, deadlock-free by construction).  This axis turns on
row-granular 2PL and sweeps the conflict rate — the fraction of traffic
routed to a small hot subset of districts — against three extension
designs.  Per cell it reports throughput, abort rate, deadlock count,
and the offline serializability verdict on real row data; a chaos cell
crashes a memory server and fires a lease-expiry storm mid-run on the
Custom design and demands zero committed-data loss and zero leaked
locks.

Everything runs in virtual time, so the recorded numbers are exact:
``BENCH_tpcc_txn.json`` is a golden (like ``BENCH_fleet.json``), and
drift means concurrency-control behavior changed and needs a deliberate
refresh::

    REPRO_UPDATE_BENCH=1 PYTHONPATH=src \\
        python -m pytest benchmarks/test_tpcc_txn.py -o testpaths=
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.faults import FaultEngine, FaultPlan, RecoveryMonitor
from repro.harness import (
    Design,
    build_database,
    format_table,
    prewarm_extension,
    rebuild_extension,
)
from repro.txn import check_serializable, committed_row_images
from repro.workloads import TpccConfig, TpccScale, build_tpcc_database, run_tpcc

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_tpcc_txn.json"
UPDATE = os.environ.get("REPRO_UPDATE_BENCH", "") == "1"

SCALE = TpccScale(warehouses=4, items=200, history_orders=40)
DESIGNS = [Design.HDD_SSD, Design.SMB_RAMDRIVE, Design.CUSTOM]
#: Conflict knob: fraction of traffic routed into warehouse 0's ten
#: districts (share 0.25 of 40).  Stock rows are shared per warehouse,
#: so concentrating intents in one warehouse — while leaving them
#: spread across its districts — maximizes genuine row deadlocks.
CONFLICT_LEVELS = {"low": 0.0, "medium": 0.5, "high": 0.9}
HOT_SHARE = 0.25


def tpcc_tables(state):
    return [
        state.warehouse, state.district, state.customer,
        state.stock, state.orders, state.order_line,
    ]


def build(design: Design, seed: int = 7):
    setup = build_database(
        design, bp_pages=830, bpext_pages=1650, tempdb_pages=512, seed=seed
    )
    db = setup.database
    state = build_tpcc_database(db, SCALE)
    prewarm_extension(setup)
    return setup, db, state


def run_cell(design: Design, hot_fraction: float, seed: int = 7) -> dict:
    setup, db, state = build(design, seed=seed)
    manager = db.transactions(record_history=True)
    config = TpccConfig(
        scale=SCALE, workers=20, transactions_per_worker=10, seed=seed,
        concurrency="2pl", hot_district_fraction=hot_fraction,
        hot_district_share=HOT_SHARE, record_history=True,
    )
    report = run_tpcc(db, state, config)
    final = committed_row_images(db, tpcc_tables(state))
    check = check_serializable(manager.history, final_rows=final)
    return {
        "transactions": report.transactions,
        "commits": report.commits,
        "aborts": report.aborts,
        "abort_rate": round(report.abort_rate, 4),
        "deadlocks": report.deadlocks,
        "retries": report.retries,
        "throughput_tps": round(report.throughput_tps, 2),
        "lock_wait_us": round(report.lock_wait_us, 1),
        "exhausted": manager.exhausted,
        "locks_idle": manager.locks.idle,
        "serializable": check.ok,
        "conflict_edges": check.edges,
        "sim_now_us": round(db.sim.now, 3),
    }


def run_chaos_cell(seed: int = 7) -> dict:
    """Memory-server crash + lease-expiry storm mid-run on Custom."""
    setup, db, state = build(Design.CUSTOM, seed=seed)
    manager = db.transactions(record_history=True)
    monitor = RecoveryMonitor(setup.sim)
    monitor.track_extension(db.pool.extension)
    monitor.track_transactions(manager)
    engine = FaultEngine.for_setup(
        setup, monitor=monitor,
        on_provider_restored=lambda _name: rebuild_extension(setup),
    )
    base = setup.sim.now
    plan = (
        FaultPlan(seed=seed)
        .lease_storm(base + 20_000, fraction=0.5)
        .crash(base + 50_000, "mem0", duration_us=100_000)
    )
    engine.run_plan(plan)
    config = TpccConfig(
        scale=SCALE, workers=20, transactions_per_worker=15, seed=seed,
        concurrency="2pl", hot_district_fraction=0.8, hot_district_share=0.05,
        record_history=True,
    )
    report = run_tpcc(db, state, config)
    final = committed_row_images(db, tpcc_tables(state))
    check = check_serializable(manager.history, final_rows=final)
    crash = next(
        record for record in monitor.records
        if record.spec.kind.value == "memory-server-crash"
    )
    return {
        "transactions": report.transactions,
        "commits": report.commits,
        "aborts": report.aborts,
        "dooms": report.dooms,
        "pages_lost": crash.pages_lost,
        "txns_doomed_by_crash": crash.txns_doomed,
        "exhausted": manager.exhausted,
        "locks_idle": manager.locks.idle,
        "serializable": check.ok,
        "sim_now_us": round(db.sim.now, 3),
    }


def measure() -> dict:
    cells = {}
    rows = []
    for level, fraction in CONFLICT_LEVELS.items():
        for design in DESIGNS:
            cell = run_cell(design, fraction)
            cells[f"{level}/{design.value}"] = cell
            rows.append([
                level, design.value, cell["throughput_tps"],
                cell["abort_rate"], cell["deadlocks"],
                "yes" if cell["serializable"] else "NO",
            ])
    chaos = run_chaos_cell()
    print()
    print(format_table(
        ["conflict", "design", "transactions/sec", "abort rate", "deadlocks",
         "serializable"],
        rows, title="TPC-C with 2PL: throughput and abort rate vs conflict rate",
    ))
    print(
        f"chaos (crash + lease storm, Custom): {chaos['commits']}/"
        f"{chaos['transactions']} committed, {chaos['dooms']} doomed, "
        f"serializable={chaos['serializable']}"
    )
    return {"cells": cells, "chaos": chaos}


def test_tpcc_txn_conflict_axis(once):
    results = once(measure)
    cells, chaos = results["cells"], results["chaos"]

    for name, cell in cells.items():
        # Every intent eventually commits, serializably, with no locks
        # leaked — at every conflict level, on every design.
        assert cell["commits"] == cell["transactions"] == 200, name
        assert cell["exhausted"] == 0, name
        assert cell["locks_idle"], name
        assert cell["serializable"], name
    for design in DESIGNS:
        low = cells[f"low/{design.value}"]
        high = cells[f"high/{design.value}"]
        # The conflict knob works: hot-district routing produces real
        # aborts, and strictly more of them than the uniform mix.
        assert high["abort_rate"] > 0, design
        assert high["abort_rate"] > low["abort_rate"], design
        assert high["deadlocks"] > 0, design

    # The chaos cell: the crash doomed live transactions, every one
    # retried to a commit, and no committed row was lost.
    assert chaos["dooms"] > 0
    assert chaos["txns_doomed_by_crash"] == chaos["dooms"]
    assert chaos["commits"] == chaos["transactions"] == 300
    assert chaos["exhausted"] == 0
    assert chaos["locks_idle"]
    assert chaos["serializable"]

    if UPDATE or not BENCH_PATH.exists():
        BENCH_PATH.write_text(json.dumps({
            "description": "TPC-C under strict 2PL: throughput + abort rate "
                           "vs conflict rate x design; virtual-time exact "
                           "golden",
            "results": results,
        }, indent=2) + "\n")
        return
    recorded = json.loads(BENCH_PATH.read_text())["results"]
    assert results == recorded, (
        "transactional TPC-C benchmark drifted from BENCH_tpcc_txn.json — if "
        "the change is deliberate, refresh with REPRO_UPDATE_BENCH=1"
    )
