"""Figure 11: RangeScan drill-down — I/O MB/s, CPU %, page-read latency.

The paper's three panels for HDD+SSD vs SMBDirect+RamDrive vs Custom:

* with fast remote memory the bottleneck shifts to CPU (~100 % busy vs
  ~20 % for HDD+SSD),
* Custom's extension page reads complete in ~13 µs vs ~272 µs for
  SMB Direct, because stock engines treat the file as asynchronous I/O
  and pay scheduling overheads per completion (Section 6.2.1).
"""

from conftest import rangescan_experiment

from repro.harness import Design, format_metrics, format_table


def run_figure11():
    results = {}
    rows = []
    for design in (Design.HDD_SSD, Design.SMBDIRECT_RAMDRIVE, Design.CUSTOM):

        def track(setup):
            # Adopt the drill-down instruments into the setup's registry
            # and read everything back through it below.
            registry = setup.metrics
            registry.register(
                "fig11.cpu_busy",
                setup.db_server.cpu.track_utilization(bucket_us=0.1e6),
            )
            extension = setup.database.pool.extension
            registry.get("bp.ext.read_latency").reset()
            if "rfile.bpext.io_latency" in registry:
                registry.get("rfile.bpext.io_latency").reset()
            registry.register(
                "fig11.ext_bytes", extension.track_throughput(bucket_us=0.1e6)
            )

        setup, _table, report = rangescan_experiment(
            design, update_fraction=0.0, workers=80, queries=25, track=track,
        )
        registry = setup.metrics
        elapsed = report.elapsed_us
        cores = setup.db_server.spec.cores
        busy = sum(v for _t, v in registry.get("fig11.cpu_busy").series())
        cpu_pct = 100.0 * busy / (elapsed * cores)
        moved = sum(v for _t, v in registry.get("fig11.ext_bytes").series())
        io_mb_per_s = (moved / 1e6) / (elapsed / 1e6)
        if "rfile.bpext.io_latency" in registry:
            # Custom: the issuing scheduler keeps its core while spinning,
            # so the observed latency is the RDMA completion time.
            ext_read_us = registry.get("rfile.bpext.io_latency").mean
        else:
            ext_read_us = registry.get("bp.ext.read_latency").mean
        results[design] = (io_mb_per_s, cpu_pct, ext_read_us)
        rows.append([design.value, io_mb_per_s, cpu_pct, ext_read_us])
        print()
        print(format_metrics(
            registry, prefix="bp",
            title=f"Figure 11 metrics [{design.value}] (buffer-pool subtree)",
        ))
    print()
    print(format_table(
        ["design", "ext I/O MB/s", "CPU %", "ext read latency us"], rows,
        title="Figure 11: RangeScan drill-down (means over the run)",
    ))
    return results


def test_fig11_rangescan_drilldown(once):
    results = once(run_figure11)
    hdd_io, hdd_cpu, _hdd_lat = results[Design.HDD_SSD]
    smbd_io, smbd_cpu, smbd_lat = results[Design.SMBDIRECT_RAMDRIVE]
    cust_io, cust_cpu, cust_lat = results[Design.CUSTOM]
    # CPU becomes the bottleneck with fast remote memory.
    assert cust_cpu > 70
    assert smbd_cpu > 55
    assert hdd_cpu < 45
    # Custom's synchronous page reads are far cheaper than SMB Direct's
    # async-I/O path (paper: ~13 us vs ~272 us).
    assert cust_lat < 40
    assert smbd_lat > 4 * cust_lat
    # Remote designs actually move more extension I/O than HDD+SSD.
    assert cust_io > hdd_io
