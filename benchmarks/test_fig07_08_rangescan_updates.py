"""Figures 7/8: RangeScan with 20 % updates — throughput and latency.

Updates append to the transaction log on the HDD array, so throughput
improves with spindle count; all remote-memory designs beat HDD+SSD,
and Custom lands within ~10-20 % of Local Memory.
"""

from conftest import ALL_DESIGNS, rangescan_experiment

from repro.harness import Design, format_table


def run_figures_7_8():
    results = {}
    rows = []
    for spindles in (4, 8, 20):
        for design in ALL_DESIGNS:
            _setup, _table, report = rangescan_experiment(
                design, spindles=spindles, update_fraction=0.2,
                workers=80, queries=25,
            )
            results[(design, spindles)] = (
                report.throughput_qps, report.latency.mean / 1000.0
            )
            rows.append([
                f"{spindles} spindles", design.value,
                report.throughput_qps, report.latency.mean / 1000.0,
            ])
    print()
    print(format_table(
        ["config", "design", "queries/sec", "latency ms"], rows,
        title="Figures 7/8: RangeScan with 20% updates",
    ))
    return results


def test_fig07_08_rangescan_updates(once):
    results = once(run_figures_7_8)

    def qps(design, spindles=20):
        return results[(design, spindles)][0]

    # Remote-memory designs beat HDD+SSD (paper: 3-10x for short r/w).
    for design in (Design.SMB_RAMDRIVE, Design.SMBDIRECT_RAMDRIVE, Design.CUSTOM):
        assert qps(design) > 1.5 * qps(Design.HDD_SSD), design
    # Local Memory stays ahead of every disk/remote design.
    assert qps(Design.LOCAL_MEMORY) > qps(Design.CUSTOM)
    # The three remote designs are comparable under the update mix
    # (the log on the HDD array is the shared bottleneck).
    assert qps(Design.CUSTOM) > 0.85 * qps(Design.SMBDIRECT_RAMDRIVE)
    assert qps(Design.CUSTOM) > 0.85 * qps(Design.SMB_RAMDRIVE)
    # With updates, more spindles -> higher throughput (log on HDD).
    assert qps(Design.CUSTOM, 20) > qps(Design.CUSTOM, 4)
