"""Figure 24: varying the local memory available to the database server.

Custom's advantage over HDD+SSD shrinks as local memory grows, and the
two meet once the database fits entirely in local memory.
"""

from conftest import rangescan_experiment

from repro.harness import Design, format_table

#: Local-memory sweep (pages); the table needs ~3700 pages, so the last
#: steps cache the whole database (paper sweeps 16 GB .. 128 GB).
BP_SIZES = (512, 1024, 2048, 3072, 4608)


def run_figure24():
    results = {}
    rows = []
    for bp_pages in BP_SIZES:
        for design in (Design.HDD_SSD, Design.CUSTOM):
            _setup, _table, report = rangescan_experiment(
                design, bp_pages=bp_pages, workers=80, queries=20,
            )
            results[(design, bp_pages)] = (
                report.throughput_qps, report.latency.mean / 1000.0
            )
            rows.append([
                bp_pages * 8 // 1024, design.value,
                report.throughput_qps, report.latency.mean / 1000.0,
            ])
    print()
    print(format_table(
        ["local memory MB", "design", "queries/sec", "latency ms"], rows,
        title="Figure 24: impact of available local memory",
    ))
    return results


def test_fig24_local_memory(once):
    results = once(run_figure24)

    def gain(bp_pages):
        return (
            results[(Design.CUSTOM, bp_pages)][0]
            / results[(Design.HDD_SSD, bp_pages)][0]
        )

    # Remote memory helps a lot when local memory is scarce...
    assert gain(BP_SIZES[0]) > 3.0
    # ... and the benefit shrinks as local memory grows ...
    assert gain(BP_SIZES[0]) > gain(BP_SIZES[-2]) > 1.0
    # ... until the database fits in RAM and the designs are equal.
    assert abs(gain(BP_SIZES[-1]) - 1.0) < 0.15
    # Custom itself improves slightly with more local memory (local is
    # two orders of magnitude faster than remote).
    assert results[(Design.CUSTOM, BP_SIZES[-1])][0] >= \
        results[(Design.CUSTOM, BP_SIZES[0])][0]
