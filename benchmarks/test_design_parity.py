"""Design-parity goldens: the cost model must not drift across refactors.

For every Table-5 design (plus the three-tier spec-only design) this
runs one small OLTP benchmark (RangeScan with 20 % updates) and one
analytic benchmark (read-only RangeScan built with ``analytic=True``,
which exercises the BPExt-disable rule) and compares the resulting
virtual clock, hit counters and latency aggregates against checked-in
golden numbers — **bit-identical**, not approximate.  The simulation is
deterministic by construction, so any difference means a refactor
changed engine behavior, not just code structure.

Regenerating goldens (only when a *deliberate* cost-model change lands):

    REPRO_UPDATE_GOLDENS=force PYTHONPATH=src \
        python -m pytest benchmarks/test_design_parity.py -q -o testpaths=

``REPRO_UPDATE_GOLDENS=1`` writes only entries missing from the file
(used when a new design is added), leaving existing goldens untouched.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.harness import Design, build_database, prewarm_extension
from repro.harness.dbbench import prewarm_pool
from repro.workloads import RangeScanConfig, build_customer_table, run_rangescan

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_parity.json")

#: Deliberately small: the point is determinism, not the paper's shape.
N_ROWS = 24_000
BP_PAGES = 192
EXT_PAGES = 1200

PARITY_DESIGNS = [
    Design.HDD,
    Design.HDD_SSD,
    Design.SMB_RAMDRIVE,
    Design.SMBDIRECT_RAMDRIVE,
    Design.CUSTOM,
    Design.LOCAL_MEMORY,
    Design.THREE_TIER,
]

WORKLOADS = ("oltp", "analytic")


def run_parity_case(design: Design, workload: str) -> dict:
    """Build a design, run one small RangeScan, return exact observables."""
    analytic = workload == "analytic"
    setup = build_database(
        design,
        bp_pages=BP_PAGES,
        bpext_pages=EXT_PAGES,
        tempdb_pages=1024,
        data_spindles=8,
        analytic=analytic,
        local_memory_bonus_pages=EXT_PAGES if design is Design.LOCAL_MEMORY else 0,
        seed=11,
    )
    db = setup.database
    table = build_customer_table(db, N_ROWS)
    prewarm_extension(setup)
    prewarm_pool(setup)
    config = RangeScanConfig(
        n_rows=N_ROWS,
        workers=16,
        queries_per_worker=4,
        update_fraction=0.0 if analytic else 0.2,
        seed=7,
    )
    report = run_rangescan(db, table, config, rng=setup.cluster.rng.stream("parity"))
    pool = db.pool
    extension = pool.extension
    return {
        "virtual_clock_us": setup.sim.now,
        "events_processed": setup.sim.events_processed,
        "elapsed_us": report.elapsed_us,
        "latency_sum_us": sum(report.latency.samples),
        "queries": report.queries,
        "bp_hits": pool.hits,
        "bp_misses": pool.misses,
        "ext_hits": pool.ext_hits,
        "base_reads": pool.base_reads,
        "ext_parked": 0 if extension is None else extension.parked_pages,
    }


def _load_goldens() -> dict:
    if not os.path.exists(GOLDEN_PATH):
        return {}
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def _case_key(design: Design, workload: str) -> str:
    return f"{design.value}/{workload}"


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("design", PARITY_DESIGNS, ids=lambda d: d.value)
def test_design_parity(design: Design, workload: str):
    mode = os.environ.get("REPRO_UPDATE_GOLDENS", "")
    goldens = _load_goldens()
    key = _case_key(design, workload)
    observed = run_parity_case(design, workload)
    if mode == "force" or (mode == "1" and key not in goldens):
        goldens[key] = observed
        with open(GOLDEN_PATH, "w") as fh:
            json.dump(goldens, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return
    assert key in goldens, (
        f"no golden for {key}; run with REPRO_UPDATE_GOLDENS=1 to record it"
    )
    expected = goldens[key]
    mismatches = {
        field: (expected[field], observed.get(field))
        for field in expected
        if observed.get(field) != expected[field]
    }
    assert not mismatches, (
        f"{key}: virtual-time results drifted from golden "
        f"(field: (golden, observed)): {mismatches}"
    )
