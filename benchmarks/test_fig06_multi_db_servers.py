"""Figure 6: 1..8 database servers against one memory server.

Aggregate throughput scales ~linearly until the provider's NIC
saturates (~4 DB servers at the paper's tuning), after which latency
climbs with contention while throughput flattens.
"""

from dataclasses import replace

from repro.harness import format_table
from repro.harness.iobench import build_multi_db
from repro.workloads import RANDOM_8K
from repro.workloads.sqlio import launch_sqlio


def run_figure6():
    results = {}
    rows = []
    # ~2 threads per DB server so ~4 servers saturate the provider NIC.
    pattern = replace(RANDOM_8K, threads=2, ops_per_thread=1000)
    for n_db in (1, 2, 4, 8):
        targets = build_multi_db(n_db)
        sim = targets[0].cluster.sim
        finalizers = []
        processes = []
        for target in targets:
            procs, finalize = launch_sqlio(
                sim, target, pattern, span_bytes=target.span_bytes,
                rng=target.cluster.rng.stream(f"sqlio.{target.name}"),
            )
            processes.extend(procs)
            finalizers.append(finalize)
        for process in processes:
            sim.run_until_complete(process)
        measurements = [finalize() for finalize in finalizers]
        aggregate = sum(m.throughput_gb_per_s for m in measurements)
        mean_latency = sum(m.mean_latency_us for m in measurements) / len(measurements)
        results[n_db] = (aggregate, mean_latency)
        rows.append([n_db, aggregate, mean_latency])
    print()
    print(format_table(
        ["DB servers", "aggregate GB/s", "mean latency us"], rows,
        title="Figure 6: multiple database servers on one memory server",
    ))
    return results


def test_fig06_multi_db_servers(once):
    results = once(run_figure6)
    # Near-linear scaling before saturation...
    assert results[2][0] > 1.7 * results[1][0]
    assert results[4][0] > 2.5 * results[1][0]
    # ... with little latency growth,
    assert results[2][1] < 1.6 * results[1][1]
    # then the NIC saturates: throughput flattens, latency climbs.
    assert results[8][0] < 1.45 * results[4][0]
    assert results[8][1] > 1.4 * results[4][1]
