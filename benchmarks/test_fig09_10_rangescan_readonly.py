"""Figures 9/10: read-only RangeScan — throughput and latency.

Without updates the log plays no role: only HDD's own throughput varies
with spindles; every other design is flat across spindle counts.
"""

from conftest import ALL_DESIGNS, rangescan_experiment

from repro.harness import Design, format_table


def run_figures_9_10():
    results = {}
    rows = []
    for spindles in (4, 20):
        for design in ALL_DESIGNS:
            _setup, _table, report = rangescan_experiment(
                design, spindles=spindles, update_fraction=0.0,
                workers=80, queries=25,
            )
            results[(design, spindles)] = (
                report.throughput_qps, report.latency.mean / 1000.0
            )
            rows.append([
                f"{spindles} spindles", design.value,
                report.throughput_qps, report.latency.mean / 1000.0,
            ])
    print()
    print(format_table(
        ["config", "design", "queries/sec", "latency ms"], rows,
        title="Figures 9/10: RangeScan read-only",
    ))
    return results


def test_fig09_10_rangescan_readonly(once):
    results = once(run_figures_9_10)

    def qps(design, spindles=20):
        return results[(design, spindles)][0]

    def latency(design, spindles=20):
        return results[(design, spindles)][1]

    # Custom within ~10-15% of Local Memory (paper's headline result).
    assert qps(Design.CUSTOM) > 0.8 * qps(Design.LOCAL_MEMORY)
    # 3-10x class gains over HDD+SSD.
    assert qps(Design.CUSTOM) > 3.0 * qps(Design.HDD_SSD)
    assert latency(Design.CUSTOM) < latency(Design.HDD_SSD) / 3.0
    # Read-only: non-HDD designs are flat across spindle counts...
    for design in (Design.HDD_SSD, Design.CUSTOM, Design.LOCAL_MEMORY):
        ratio = qps(design, 20) / qps(design, 4)
        assert 0.8 < ratio < 1.3, design
    # ... while pure HDD improves with spindles.
    assert qps(Design.HDD, 20) > 1.5 * qps(Design.HDD, 4)
