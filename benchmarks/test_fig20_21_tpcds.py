"""Figures 20/21: TPC-DS throughput and the wider improvement histogram.

TPC-DS differs from TPC-H in two ways the benchmarks reproduce: the
gains are much larger (10x to >100x for the sparse-lookup queries), and
Custom lands slightly *below* Local Memory because the TPC-DS queries
do not spill under the Local Memory setting's larger grants.
"""

from repro.harness import Design, build_database, format_table, prewarm_extension
from repro.harness.dbbench import prewarm_pool
from repro.workloads import (
    TPCDS_QUERIES,
    build_tpcds_database,
    improvement_histogram,
    run_query_streams,
)

BP, EXT, TDB = 256, 4600, 49152
DESIGNS = [
    Design.HDD, Design.HDD_SSD, Design.SMB_RAMDRIVE,
    Design.SMBDIRECT_RAMDRIVE, Design.CUSTOM, Design.LOCAL_MEMORY,
]


def run_figures_20_21():
    reports = {}
    rows = []
    for design in DESIGNS:
        bonus = EXT if design is Design.LOCAL_MEMORY else 0
        setup = build_database(
            design, bp_pages=BP, bpext_pages=EXT, tempdb_pages=TDB,
            analytic=True, local_memory_bonus_pages=bonus,
        )
        db = setup.database
        tables = build_tpcds_database(db)
        prewarm_extension(setup)
        if design is Design.LOCAL_MEMORY:
            prewarm_pool(setup)
        run_query_streams(db, tables, TPCDS_QUERIES[:10], streams=1, seed=9)
        reports[design] = run_query_streams(db, tables, TPCDS_QUERIES, streams=3, seed=1)
        rows.append([design.value, reports[design].queries_per_hour])
    print()
    print(format_table(["design", "queries/hour"], rows,
                       title="Figure 20: TPC-DS throughput"))
    histogram = improvement_histogram(
        reports[Design.HDD_SSD], reports[Design.CUSTOM],
        buckets=(2, 5, 10, 50, 100),
    )
    print("\nFigure 21: latency improvement histogram (Custom vs HDD+SSD):")
    for bucket, count in histogram.items():
        print(f"  {bucket:>8}: {count} queries")
    return reports, histogram


def test_fig20_21_tpcds(once):
    reports, histogram = once(run_figures_20_21)
    qph = {design: report.queries_per_hour for design, report in reports.items()}
    # Custom is severalfold above the disk baselines.
    assert qph[Design.CUSTOM] > 4 * qph[Design.HDD_SSD]
    assert qph[Design.CUSTOM] > qph[Design.SMB_RAMDRIVE]
    # Unlike TPC-H, Custom only ~matches Local Memory here (the paper
    # measures it slightly behind): no TPC-DS spills under Local Memory.
    assert 0.85 * qph[Design.LOCAL_MEMORY] < qph[Design.CUSTOM] < 1.1 * qph[Design.LOCAL_MEMORY]
    # The histogram has real mass far beyond 10x.
    beyond_10 = histogram["10-50x"] + histogram["50-100x"] + histogram[">100x"]
    assert beyond_10 >= 10
    # And a CPU-bound reporting class that barely moves (<2x).
    assert histogram["<2x"] >= 4
