"""Figure 3: I/O micro-benchmark throughput (SQLIO).

Paper values (GB/s):

====================  =========  ===============
design                8K random  512K sequential
====================  =========  ===============
HDD(4)                0.007      0.36
HDD(8)                0.015      0.76
HDD(20)               0.04       1.76
SSD                   0.24       0.39
SMB+RamDrive          0.64       3.36
SMBDirect+RamDrive    1.36       5.09
Custom                4.27       5.1
====================  =========  ===============
"""

from repro.harness import IO_DESIGNS, build_io_target, format_table
from repro.workloads import RANDOM_8K, SEQUENTIAL_512K, run_sqlio


def _registry_row(design, registry):
    """One metrics-table row per design, read back through the registry."""
    flat = registry.flat()

    def total(suffix, needle):
        return sum(
            value for name, value in flat.items()
            if name.endswith(suffix) and needle in name
        )

    return [
        design,
        total(".bytes_read", ".dev.") / 1e9,
        total(".bytes_sent", ".nic.") / 1e9,
        total(".reads", "rfile."),
        total(".read_latency.p95_us", ".dev."),
    ]


def run_figure3():
    rows = []
    metric_rows = []
    results = {}
    for design in IO_DESIGNS:
        random_target = build_io_target(design)
        random = run_sqlio(
            random_target.cluster.sim, random_target, RANDOM_8K,
            span_bytes=random_target.span_bytes,
            rng=random_target.cluster.rng.stream("sqlio"),
        )
        seq_target = build_io_target(design)
        sequential = run_sqlio(
            seq_target.cluster.sim, seq_target, SEQUENTIAL_512K,
            span_bytes=seq_target.span_bytes,
            rng=seq_target.cluster.rng.stream("sqlio"),
        )
        results[design] = (random.throughput_gb_per_s, sequential.throughput_gb_per_s)
        rows.append([design, random.throughput_gb_per_s, sequential.throughput_gb_per_s])
        metric_rows.append(_registry_row(design, random_target.metrics))
    print()
    print(format_table(
        ["design", "8K random GB/s", "512K sequential GB/s"], rows,
        title="Figure 3: I/O micro-benchmark throughput",
    ))
    print()
    print(format_table(
        ["design", "dev GB read", "nic GB sent", "rfile reads", "dev p95 us"],
        metric_rows,
        title="Figure 3 metrics (random pass, registry view)",
    ))
    return results


def test_fig03_io_throughput(once):
    results = once(run_figure3)
    rand = {d: r for d, (r, _s) in results.items()}
    seq = {d: s for d, (_r, s) in results.items()}
    # Random: Custom >> SMBDirect >> SMB >> SSD >> HDD.
    assert rand["Custom"] > 2.0 * rand["SMBDirect+RamDrive"]
    assert rand["SMBDirect+RamDrive"] > 1.5 * rand["SMB+RamDrive"]
    assert rand["SMB+RamDrive"] > 2.0 * rand["SSD"]
    assert rand["SSD"] > 5.0 * rand["HDD(20)"]
    # Sequential: Custom ~ SMBDirect > SMB > HDD(20) > SSD; RAID-0 HDD
    # beats the SSD sequentially (the paper's Table-5 rationale).
    assert abs(seq["Custom"] - seq["SMBDirect+RamDrive"]) / seq["Custom"] < 0.2
    assert seq["SMBDirect+RamDrive"] > seq["SMB+RamDrive"]
    assert seq["HDD(20)"] > 2.0 * seq["SSD"]
    # Spindle scaling.
    assert seq["HDD(20)"] > 3.0 * seq["HDD(4)"]
