"""Figure 26: recovering the semantic cache after a remote node failure.

The cache is best-effort: losing the provider wipes it.  Because it
lives inside the RDBMS, the REDO logic can rebuild it on another server
from the last checkpoint plus the transaction-log tail — recovery time
grows linearly with the amount of dirty (post-checkpoint) data.
"""

from repro.engine import RemotePageFile, SemanticCache
from repro.engine.wal import LogRecord, LogRecordKind
from repro.harness import Design, build_database, format_table

#: Dirty-data points (MB of post-checkpoint changes, scaled from the
#: paper's 1..16 GB sweep).
DIRTY_MB = (1, 2, 4, 8, 16)
ROW_BYTES = 512


def run_figure26():
    results = {}
    rows = []
    for dirty_mb in DIRTY_MB:
        setup = build_database(
            Design.CUSTOM, bp_pages=1024, bpext_pages=512, tempdb_pages=8192,
        )
        db = setup.database
        cache = SemanticCache(db)
        # The dirty working set scales with the sweep point: distinct
        # rows were updated since the checkpoint.
        n_updates = dirty_mb * 1024 * 1024 // ROW_BYTES
        base_rows = [(index, "v0", "x" * 8) for index in range(n_updates)]
        # Placement comes from the design's tier spec (Custom puts the
        # semantic cache in remote memory).
        store = setup.run(setup.cache_store(4096, name="mv"))
        view = setup.run(cache.create_view(
            "idx", "t1", base_rows, ROW_BYTES, store,
        ))
        setup.run(db.wal.checkpoint())
        view.checkpoint_lsn = db.wal.checkpoint_lsn
        # Post-checkpoint updates: the dirty data REDO must replay.
        for index in range(n_updates):
            db.wal.records.append(LogRecord(
                lsn=db.wal.next_lsn(), kind=LogRecordKind.UPDATE, table="mv",
                key=index,
                row=(index, "v1", "y" * 8),
                payload_bytes=ROW_BYTES,
            ))
        db.wal._tail_offset += n_updates * ROW_BYTES
        # The provider fails: build a replacement store and recover.
        new_file = setup.run(setup.remote_fs.create(f"mv2.{dirty_mb}", 64 * 1024 * 1024))
        setup.run(new_file.open())
        new_store = RemotePageFile(6001 + dirty_mb, new_file, capacity_pages=4096)
        start = db.sim.now
        applied = setup.run(cache.recover_view("t1", new_store, base_rows))
        recovery_us = db.sim.now - start
        results[dirty_mb] = recovery_us
        rows.append([dirty_mb, applied, recovery_us / 1e6])
    print()
    print(format_table(
        ["dirty MB", "records replayed", "recovery s"], rows,
        title="Figure 26: semantic-cache REDO recovery time",
    ))
    return results


def test_fig26_cache_recovery(once):
    results = once(run_figure26)
    # Recovery time grows with dirty data...
    assert results[16] > 2.5 * results[2]
    # ... with a ~constant marginal cost per dirty MB (linear trend on
    # top of a small fixed recovery overhead, as in Figure 26).
    marginal_small = (results[8] - results[4]) / 4
    marginal_large = (results[16] - results[8]) / 8
    assert 0.5 < marginal_large / marginal_small < 2.0
    # Small dirty sets recover fast (paper: <1 GB in tens of seconds,
    # which scales down to well under a second here).
    assert results[1] < 1e6
