"""Figure 14: the Hash+Sort micro-benchmark (TempDB stress).

Latency of ``SELECT TOP N * FROM lineitem JOIN orders ... ORDER BY
extendedprice`` across designs.  Key shapes: Custom ~ SMBDirect (both
sequential-bandwidth-bound on TempDB); HDD *faster* than HDD+SSD
(RAID-0 sequential beats the SSD); Custom several times faster than
HDD+SSD.  The drill-down confirms phase 1 (build/spill writes) is
CPU-lean and phase 2 (merge reads+writes) is I/O-heavy.
"""

from repro.harness import Design, build_database, format_table
from repro.workloads import HashSortConfig, build_hashsort_tables, run_hashsort

DESIGNS = (
    Design.HDD,
    Design.HDD_SSD,
    Design.SMB_RAMDRIVE,
    Design.SMBDIRECT_RAMDRIVE,
    Design.CUSTOM,
)


def run_figure14():
    config = HashSortConfig()
    results = {}
    rows = []
    for design in DESIGNS:
        setup = build_database(
            design, bp_pages=32768, bpext_pages=0, tempdb_pages=64 * 1024,
            analytic=True, workspace_bytes=48 * 1024 * 1024,
        )
        db = setup.database
        lineitem, orders = build_hashsort_tables(db, config)
        run_hashsort(db, lineitem, orders, config)  # warm: cache the data
        report = run_hashsort(db, lineitem, orders, config)
        results[design] = report
        rows.append([
            design.value, report.elapsed_us / 1e6,
            report.spilled_bytes / 1e6, report.tempdb_writes, report.tempdb_reads,
        ])
    print()
    print(format_table(
        ["design", "latency s", "spilled MB", "tempdb writes", "tempdb reads"],
        rows, title="Figure 14: Hash+Sort query latency",
    ))
    return results


def test_fig14_hashsort(once):
    results = once(run_figure14)
    seconds = {design: report.elapsed_us / 1e6 for design, report in results.items()}
    # Custom is several times faster than HDD+SSD (paper: ~5x).
    assert seconds[Design.HDD_SSD] > 2.0 * seconds[Design.CUSTOM]
    # HDD beats HDD+SSD: sequential RAID-0 tops the SSD (Section 6.3).
    assert seconds[Design.HDD] < seconds[Design.HDD_SSD]
    # Custom ~ SMBDirect (both TempDB-bandwidth-bound at wire speed).
    ratio = seconds[Design.SMBDIRECT_RAMDRIVE] / seconds[Design.CUSTOM]
    assert 0.8 < ratio < 1.35
    # The query genuinely spilled in every design (same bytes).
    spilled = {r.spilled_bytes for r in results.values()}
    assert len(spilled) == 1 and spilled.pop() > 10e6
