"""Figures 18/19: TPC-H throughput and per-query latency improvements.

Key shapes: Custom beats HDD+SSD severalfold; Custom even beats Local
Memory because admission control caps grants and Q10/Q18 spill — to a
remote-memory TempDB under Custom, to the SSD under Local Memory.  The
latency histogram spans <2x (scan/CPU-bound queries) through >5x
(index-lookup queries).
"""

import os

from repro.harness import (
    Design,
    build_database,
    format_table,
    prewarm_extension,
)
from repro.harness.dbbench import prewarm_pool
from repro.workloads import TPCH_QUERIES, build_tpch_database, improvement_histogram, run_query_streams

BP, EXT, TDB = 256, 2600, 49152
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
DESIGNS_20SPIN = [
    Design.HDD, Design.HDD_SSD, Design.SMB_RAMDRIVE,
    Design.SMBDIRECT_RAMDRIVE, Design.CUSTOM, Design.LOCAL_MEMORY,
]
SPINDLE_DESIGNS = DESIGNS_20SPIN if FULL else [Design.HDD_SSD, Design.CUSTOM]


def _run_one(design, spindles):
    bonus = EXT if design is Design.LOCAL_MEMORY else 0
    setup = build_database(
        design, bp_pages=BP, bpext_pages=EXT, tempdb_pages=TDB,
        data_spindles=spindles, analytic=True, local_memory_bonus_pages=bonus,
    )
    db = setup.database
    tables = build_tpch_database(db)
    prewarm_extension(setup)
    if design is Design.LOCAL_MEMORY:
        prewarm_pool(setup)
    run_query_streams(db, tables, TPCH_QUERIES, streams=1, seed=9)  # warm
    return run_query_streams(db, tables, TPCH_QUERIES, streams=5, seed=1)


def run_figures_18_19():
    reports = {}
    rows = []
    for design in DESIGNS_20SPIN:
        reports[(design, 20)] = _run_one(design, 20)
        rows.append(["20 spindles", design.value, reports[(design, 20)].queries_per_hour])
    for spindles in (4, 8):
        for design in SPINDLE_DESIGNS:
            reports[(design, spindles)] = _run_one(design, spindles)
            rows.append([f"{spindles} spindles", design.value,
                         reports[(design, spindles)].queries_per_hour])
    print()
    print(format_table(
        ["config", "design", "queries/hour"], rows,
        title="Figure 18: TPC-H throughput",
    ))
    histogram = improvement_histogram(
        reports[(Design.HDD_SSD, 20)], reports[(Design.CUSTOM, 20)],
        buckets=(2, 5, 10),
    )
    print("\nFigure 19: latency improvement histogram (Custom vs HDD+SSD):")
    for bucket, count in histogram.items():
        print(f"  {bucket:>7}: {count} queries")
    return reports, histogram


def test_fig18_19_tpch(once):
    reports, histogram = once(run_figures_18_19)

    def qph(design, spindles=20):
        return reports[(design, spindles)].queries_per_hour

    # Custom substantially outperforms HDD+SSD and the TCP baseline.
    assert qph(Design.CUSTOM) > 2.5 * qph(Design.HDD_SSD)
    assert qph(Design.CUSTOM) > qph(Design.SMB_RAMDRIVE)
    # Custom lands within the Local Memory ballpark overall (the paper
    # even measures it slightly ahead; at simulation scale the non-spill
    # queries favour the fully-cached pool more strongly) ...
    assert qph(Design.CUSTOM) > 0.45 * qph(Design.LOCAL_MEMORY)
    # The histogram spans the paper's buckets: scan-bound queries gain
    # ~2x, index- and TempDB-bound ones far more.
    assert histogram["<2x"] + histogram["2-5x"] >= 4
    assert histogram["2-5x"] + histogram["5-10x"] >= 10
    # ... and Q10/Q18 beat Local Memory individually (they spill to a
    # remote-memory TempDB instead of the SSD).
    custom = reports[(Design.CUSTOM, 20)]
    local = reports[(Design.LOCAL_MEMORY, 20)]
    for query in ("Q10", "Q18"):
        assert custom.mean_latency_us(query) < local.mean_latency_us(query), query
