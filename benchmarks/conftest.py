"""Shared infrastructure for the per-figure benchmarks.

Every module regenerates one table/figure of the paper: it runs the
simulated experiment, prints the same rows/series the figure plots, and
asserts the qualitative shape (who wins, by roughly what factor).

Scales are reduced ~4000x from the paper's hardware (see DESIGN.md);
set ``REPRO_BENCH_FULL=1`` for larger configurations.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


# ---------------------------------------------------------------------------
# Shared experiment drivers
# ---------------------------------------------------------------------------

from repro.harness import Design, build_database, prewarm_extension  # noqa: E402
from repro.harness.dbbench import prewarm_pool  # noqa: E402
from repro.workloads import (  # noqa: E402
    RangeScanConfig,
    build_customer_table,
    run_rangescan,
)

#: RangeScan scaling: ~29 MB Customer table (paper: 110 GB), local
#: memory ~28 % of data (paper: 32 GB), BPExt covers the table
#: (paper: 128 GB).
RANGESCAN_ROWS = 120_000 if not FULL else 240_000
RANGESCAN_BP = 1024 if not FULL else 2048
RANGESCAN_EXT = 6000 if not FULL else 12000

ALL_DESIGNS = [
    Design.HDD,
    Design.HDD_SSD,
    Design.SMB_RAMDRIVE,
    Design.SMBDIRECT_RAMDRIVE,
    Design.CUSTOM,
    Design.LOCAL_MEMORY,
]


def rangescan_experiment(
    design: Design,
    spindles: int = 20,
    update_fraction: float = 0.0,
    bp_pages: int = RANGESCAN_BP,
    ext_pages: int = RANGESCAN_EXT,
    n_rows: int = RANGESCAN_ROWS,
    workers: int = 80,
    queries: int = 30,
    n_memory_servers: int = 1,
    distribution: str = "uniform",
    warm_queries: int = 10,
    track=None,
):
    """Build one design, warm it, run RangeScan, return (setup, report)."""
    bonus = ext_pages if design is Design.LOCAL_MEMORY else 0
    setup = build_database(
        design,
        bp_pages=bp_pages,
        bpext_pages=ext_pages,
        tempdb_pages=1024,
        data_spindles=spindles,
        n_memory_servers=n_memory_servers,
        analytic=False,
        local_memory_bonus_pages=bonus,
    )
    db = setup.database
    table = build_customer_table(db, n_rows)
    prewarm_extension(setup)
    prewarm_pool(setup)
    warm = RangeScanConfig(
        n_rows=n_rows, workers=workers, queries_per_worker=warm_queries,
        update_fraction=update_fraction, distribution=distribution, seed=1,
    )
    run_rangescan(db, table, warm, rng=setup.cluster.rng.stream("warm"))
    if track is not None:
        track(setup)
    config = RangeScanConfig(
        n_rows=n_rows, workers=workers, queries_per_worker=queries,
        update_fraction=update_fraction, distribution=distribution, seed=2,
    )
    report = run_rangescan(db, table, config, rng=setup.cluster.rng.stream("measure"))
    return setup, table, report
