"""Figure 15(a): materialized views in the semantic cache.

Seven TPC-H queries that DTA recommends MVs for: latency improvement
factor over the index-tuned base plan, with the MV stored on HDD+SSD
vs pinned in remote memory.  MVs alone give 1-4 orders of magnitude;
remote-memory pinning adds roughly another order for the larger MVs.
"""

from repro.engine import DevicePageFile, RemotePageFile, SemanticCache
from repro.engine.page import PAGE_SIZE
from repro.harness import Design, build_database, format_table, prewarm_extension
from repro.workloads import TPCH_QUERIES, build_tpch_database

#: The seven MV-eligible queries and their (scaled) MV row counts —
#: larger MVs benefit more from remote pinning.
MV_QUERIES = {
    "Q3": 400, "Q5": 800, "Q7": 1_600, "Q9": 3_200,
    "Q4": 6_400, "Q12": 12_800, "Q1": 40_000,
}
MV_ROW_BYTES = 64


def run_figure15a():
    setup = build_database(
        Design.CUSTOM, bp_pages=256, bpext_pages=2600, tempdb_pages=49152,
        analytic=True,
    )
    db = setup.database
    tables = build_tpch_database(db)
    prewarm_extension(setup)
    # Offer additional remote memory for the semantic cache (the MVs are
    # pinned outside the BPExt/TempDB files).
    from repro.broker import MemoryProxy
    extra = MemoryProxy(setup.memory_servers[0], setup.broker, mr_bytes=16 * 1024 * 1024)
    setup.run(extra.offer_available(limit_bytes=512 * 1024 * 1024))
    specs = {spec.name: spec for spec in TPCH_QUERIES}
    cache = SemanticCache(db)
    sim = db.sim
    rng = setup.cluster.rng.stream("fig15a")
    results = {}
    rows = []
    for name, mv_rows in MV_QUERIES.items():
        plan, memory, consumers = specs[name].factory(db, tables, rng)

        def run_base():
            result = yield from db.execute(plan, requested_memory_bytes=memory,
                                           memory_consumers=consumers)
            return result

        start = sim.now
        sim.run_until_complete(sim.spawn(run_base()))
        base_us = sim.now - start
        mv_result_rows = [(index, float(index)) for index in range(mv_rows)]
        # MV on the SSD (the no-remote-memory fallback).
        ssd_store = DevicePageFile(
            7000 + len(results), db.server, db.server.device("ssd"),
            capacity_pages=mv_rows // 100 + 16,
        )
        ssd_view = setup.run(cache.create_view(
            f"{name}.mv.ssd", f"{name}.ssd", mv_result_rows, MV_ROW_BYTES, ssd_store,
        ))
        start = sim.now
        sim.run_until_complete(sim.spawn(cache.scan_view(ssd_view)))
        ssd_us = sim.now - start
        # MV pinned in remote memory.
        remote_file = setup.run(setup.remote_fs.create(
            f"{name}.mv", max(1, mv_rows * MV_ROW_BYTES // PAGE_SIZE + 1) * PAGE_SIZE * 2
        ))
        setup.run(remote_file.open())
        remote_store = RemotePageFile(7100 + len(results), remote_file)
        remote_view = setup.run(cache.create_view(
            f"{name}.mv.remote", f"{name}.remote", mv_result_rows, MV_ROW_BYTES,
            remote_store, timed=False,
        ))
        start = sim.now
        sim.run_until_complete(sim.spawn(cache.scan_view(remote_view)))
        remote_us = sim.now - start
        results[name] = (base_us, ssd_us, remote_us)
        rows.append([
            name, mv_rows, base_us / 1000, ssd_us / 1000, remote_us / 1000,
            base_us / ssd_us, base_us / remote_us,
        ])
    print()
    print(format_table(
        ["query", "MV rows", "base ms", "MV@SSD ms", "MV@remote ms",
         "gain SSD", "gain remote"],
        rows, title="Figure 15a: semantic-cache materialized views",
    ))
    return results


def test_fig15a_semantic_mv(once):
    results = once(run_figure15a)
    for name, (base, ssd, remote) in results.items():
        # MVs give large factors over the base plan (up to orders of
        # magnitude for the small MVs, as in the paper).
        assert base / ssd > 3, name
        # Remote pinning is at least as good as the SSD copy.
        assert remote <= ssd * 1.05, name
    # Small MVs: two orders of magnitude over the base plan.
    small_base, small_ssd, _small_remote = results["Q3"]
    assert small_base / small_ssd > 50
    # For larger MVs the remote copy adds a further factor (the paper:
    # pinning larger MVs to remote memory yields the higher benefits).
    big_base, big_ssd, big_remote = results["Q1"]
    assert big_ssd / big_remote > 1.1
