"""Figure 25: several database servers sharing one memory server's RAM.

Each DB server runs RangeScan with a small local pool and a BPExt
leased from the single provider.  Aggregate throughput scales with the
number of DB servers until the provider's NIC saturates; after that
latency climbs without much aggregate gain.
"""

from repro.broker import MemoryBroker, MemoryProxy
from repro.cluster import Cluster
from repro.engine import Database, RemotePageFile
from repro.engine.bufferpool import BufferPoolExtension
from repro.harness import format_table
from repro.net import Network
from repro.remotefile import RemoteMemoryFilesystem, StagingPool
from repro.storage import GB, MB, Raid0Array
from repro.workloads import RangeScanConfig, build_customer_table
from repro.workloads.rangescan import launch_rangescan
from repro.sim.kernel import AllOf

N_ROWS = 25_000   # ~6 MB per DB server
BP_PAGES = 128
EXT_PAGES = 1280  # covers the table


def _build(n_db):
    cluster = Cluster(seed=12)
    network = Network(cluster.sim)
    mem = cluster.add_server("mem0", memory_bytes=384 * GB)
    network.attach(mem)
    broker = MemoryBroker(cluster.sim)
    proxy = MemoryProxy(mem, broker, mr_bytes=32 * MB)
    cluster.sim.run_until_complete(cluster.sim.spawn(
        proxy.offer_available(limit_bytes=n_db * 64 * MB + 128 * MB)))
    databases = []
    for index in range(n_db):
        server = cluster.add_server(f"db{index}")
        network.attach(server)
        hdd = server.attach_device(
            "hdd", Raid0Array(cluster.sim, spindles=20,
                              rng=cluster.rng.stream(f"hdd{index}")))
        fs = RemoteMemoryFilesystem(server, broker, StagingPool(server))

        def setup(fs=fs, index=index):
            yield from fs.initialize()
            file = yield from fs.create(f"ext{index}", EXT_PAGES * 8192)
            yield from file.open()
            return file

        file = cluster.sim.run_until_complete(cluster.sim.spawn(setup()))
        ext = BufferPoolExtension(RemotePageFile(900, file, capacity_pages=EXT_PAGES))
        database = Database(server, bp_pages=BP_PAGES, data_device=hdd,
                            bpext_store=None)
        database.pool.extension = ext
        table = build_customer_table(database, N_ROWS)
        databases.append((database, table))
    return cluster, databases


def run_figure25():
    results = {}
    rows = []
    for n_db in (1, 2, 4, 8):
        cluster, databases = _build(n_db)
        sim = cluster.sim
        # Warm every DB server's extension via the workload.
        warm_cfg = RangeScanConfig(n_rows=N_ROWS, workers=32,
                                   queries_per_worker=25, seed=5)
        processes = []
        for database, table in databases:
            procs, _fin = launch_rangescan(database, table, warm_cfg,
                                           rng=cluster.rng.stream("w"))
            processes.extend(procs)
        sim.run_until_complete(sim.spawn(_wait(sim, processes)))
        # Measure all servers concurrently.
        config = RangeScanConfig(n_rows=N_ROWS, workers=32,
                                 queries_per_worker=25, seed=6)
        finalizers = []
        processes = []
        for database, table in databases:
            procs, finalize = launch_rangescan(database, table, config,
                                               rng=cluster.rng.stream("m"))
            processes.extend(procs)
            finalizers.append(finalize)
        sim.run_until_complete(sim.spawn(_wait(sim, processes)))
        reports = [finalize() for finalize in finalizers]
        aggregate = sum(report.throughput_qps for report in reports)
        latency = sum(r.latency.mean for r in reports) / len(reports) / 1000.0
        results[n_db] = (aggregate, latency)
        rows.append([n_db, aggregate, latency])
    print()
    print(format_table(
        ["DB servers", "aggregate queries/sec", "avg latency ms"], rows,
        title="Figure 25: RangeScan from multiple DB servers on one provider",
    ))
    return results


def _wait(sim, processes):
    yield AllOf(sim, processes)


def test_fig25_multi_db_rangescan(once):
    results = once(run_figure25)
    # Aggregate throughput grows with DB servers before saturation.
    assert results[2][0] > 1.6 * results[1][0]
    assert results[4][0] > 2.4 * results[1][0]
    # Adding servers beyond saturation mostly adds latency.
    assert results[8][1] > results[1][1]
